//! Fig. 8 — test contrast and detectability vs under-rotation at scale.
//!
//! For N = 8, 16, 32 qubits and 2-MS / 4-MS tests: one coupling receives a
//! swept under-rotation `u` while every other coupling carries a random
//! ±10% ambient calibration error (the paper's "10% average calibration
//! error" noise floor). Reported per sweep point:
//!
//! * the mean score of tests containing the faulty pair vs those not
//!   containing it (the paper's solid curves and dashed "average fidelity
//!   absent calibration outliers" baselines), and
//! * the probability that the full single-fault protocol identifies the
//!   planted coupling, with the minimum `u` reaching 95% identification
//!   (paper: 2MS ≈ 25/30/35%, 4MS ≈ 20/25/30% for 8/16/32 qubits).
//!
//! Tests use the worst-qubit population score: as derived in DESIGN.md §3,
//! the exact-output-string probability of a class test decays
//! exponentially in the number of in-class couplings under ambient error
//! (~10⁻² at 16 qubits, ~10⁻⁴ at 32), so no threshold on it can work at
//! scale — per-qubit populations are what a scalable single-output test
//! thresholds, and what keeps this figure's contrast alive at 32 qubits.

use itqc_bench::ambient::{
    ambient_executor_uniform, calibrate_threshold_uniform_par, random_couplings,
};
use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::{Args, ShotSampled};
use itqc_core::testplan::ScoreMode;
use itqc_core::{first_round_classes, Diagnosis, LabelSpace, SingleFaultProtocol, TestSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

const AMBIENT: f64 = 0.10;
const SHOTS: usize = 300;
const SCORE: ScoreMode = ScoreMode::WorstQubit;

fn main() {
    let args = Args::parse(120);
    section("Fig. 8: fault contrast and identification vs under-rotation");

    let sweep: Vec<f64> = (0..=10).map(|k| 0.05 * k as f64).collect();
    let mut summary = Table::new(["qubits", "test", "threshold", "min u @ 95% ident", "paper"]);
    let paper_min = [[(8, 0.25), (16, 0.30), (32, 0.35)], [(8, 0.20), (16, 0.25), (32, 0.30)]];

    for (ri, reps) in [2usize, 4].into_iter().enumerate() {
        for (ni, n) in [8usize, 16, 32].into_iter().enumerate() {
            let tag = format!("fig8/n={n}/r={reps}");
            let mut rng = SmallRng::seed_from_u64(args.seed_for(&tag));
            let threshold = calibrate_threshold_uniform_par(
                args.threads,
                n,
                reps,
                AMBIENT,
                SCORE,
                SHOTS,
                0.005,
                60.max(args.trials / 2),
                args.seed_for(&format!("{tag}/threshold")),
            );
            section(&format!("{n} qubits, {reps}-MS tests (threshold {})", f3(threshold)));

            let space = LabelSpace::new(n);
            let classes = first_round_classes(&space);
            let none = BTreeSet::new();
            let mut table =
                Table::new(["under-rot", "faulty-test score", "healthy-test score", "P(identify)"]);
            let mut min_u95: Option<f64> = None;
            for &u in &sweep {
                let mut faulty_s = Vec::new();
                let mut healthy_s = Vec::new();
                let mut identified = 0usize;
                for trial in 0..args.trials {
                    let target = random_couplings(n, 1, &mut rng)[0];
                    let exec = ambient_executor_uniform(n, AMBIENT, &[(target, u)], &mut rng);
                    for class in &classes {
                        let couplings = class.couplings(&space, &none);
                        let spec = TestSpec::for_couplings("t", &couplings, reps).with_score(SCORE);
                        let s = exec.exact_score(&spec);
                        if couplings.contains(&target) {
                            faulty_s.push(s);
                        } else {
                            healthy_s.push(s);
                        }
                    }
                    let mut shot_exec = ShotSampled::for_trial(
                        exec,
                        args.seed_for(&format!("{tag}/u{u:.2}")),
                        trial,
                    );
                    let protocol =
                        SingleFaultProtocol::new(n, reps, threshold, SHOTS).with_score(SCORE);
                    let report = protocol.diagnose(&mut shot_exec);
                    if report.diagnosis == Diagnosis::Fault(target) {
                        identified += 1;
                    }
                }
                let p_id = identified as f64 / args.trials as f64;
                if p_id >= 0.95 && min_u95.is_none() {
                    min_u95 = Some(u);
                }
                table.row([
                    pct(u),
                    f3(itqc_math::stats::mean(&faulty_s)),
                    f3(itqc_math::stats::mean(&healthy_s)),
                    f3(p_id),
                ]);
            }
            println!("{}", table.render());
            if args.csv {
                println!("{}", table.to_csv());
            }
            let paper = paper_min[ri][ni].1;
            summary.row([
                n.to_string(),
                format!("{reps}MS"),
                f3(threshold),
                min_u95.map(pct).unwrap_or_else(|| ">50%".into()),
                pct(paper),
            ]);
        }
    }

    section("summary: minimum under-rotation identified in 95% of cases");
    println!("{}", summary.render());
    println!(
        "expected shape: 4-MS amplifies faults harder than 2-MS (smaller minimum\n\
         detectable under-rotation) and larger machines need larger outliers."
    );
}
