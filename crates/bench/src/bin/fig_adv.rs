//! Adversarial fault-coverage scorecard — identification probability vs
//! *configuration class*, with the countermeasures off and on.
//!
//! Table II and Fig. 8 score the pipeline on uniformly drawn fault
//! sets; this scorecard scores it on the worst case. Three classes per
//! machine size:
//!
//! * `uniform` — random distinct couplings (the Table II draw), with
//!   the fault count matched to the even-degree distribution;
//! * `even-degree` — cycles and disjoint-cycle unions in the coupling
//!   graph: every qubit touches an even number of faults, so the fixed
//!   worst-qubit canary passes at any magnitude and the paper loop
//!   converges without opening a diagnosis round (0 % structurally);
//! * `tied-cover` — one member each of two conflicting same-syndrome
//!   families: every candidate cover predicts identical scores at every
//!   rung, and the evidence-fusion consensus honestly abstains.
//!
//! The countermeasure column re-runs every cell with rotating canary
//! subsets plus disputed-member interrogation
//! (`itqc_core::MultiFaultConfig::canary_rotations`,
//! `DecoderPolicy::Interrogate`). The acceptance bar: even-degree
//! configurations rise from 0 % to the uniform-draw level. False
//! accusations must be zero everywhere — blind spots may only cause
//! misses, because every accusation is magnitude-verified.
//!
//! The estimators live in `itqc_bench::adversarial` on the
//! deterministic parallel trial engine; this binary only renders them.

use itqc_bench::adversarial::{adversarial_score, ADV_CANARY_ROTATIONS, ADV_FAULT_U};
use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::Args;
use itqc_faults::adversarial::ConfigClass;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse(200);
    itqc_bench::metrics::init(&args);
    section("Adversarial fault-coverage scorecard");
    println!(
        "planted |u|: {}  canary rotations under countermeasures: {ADV_CANARY_ROTATIONS}",
        pct(ADV_FAULT_U)
    );

    let mut table = Table::new([
        "qubits",
        "class",
        "mean k",
        "P(identify) fixed canary",
        "P(identify) countermeasures",
        "false accusations",
    ]);
    for n in [8usize, 16] {
        for class in ConfigClass::ALL {
            let tag = format!("fig_adv/n={n}/{class}");
            let base = adversarial_score(
                n,
                class,
                args.trials,
                args.threads,
                false,
                args.seed_for(&format!("{tag}/fixed")),
            );
            let fixed = adversarial_score(
                n,
                class,
                args.trials,
                args.threads,
                true,
                args.seed_for(&format!("{tag}/rotating")),
            );
            table.row([
                n.to_string(),
                class.to_string(),
                f3(base.mean_faults),
                f3(base.identification),
                f3(fixed.identification),
                (base.false_accusations + fixed.false_accusations).to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    if args.csv {
        println!("{}", table.to_csv());
    }
    println!(
        "expected shape: even-degree and tied-cover cells are exactly 0 under the\n\
         fixed canary (structural blind spots, not sampling accidents) and reach\n\
         the uniform-draw level under rotating canary subsets + disputed-member\n\
         interrogation; false accusations stay 0 in every cell."
    );
    itqc_bench::metrics::emit_if_requested("fig_adv", &args, started.elapsed());
}
