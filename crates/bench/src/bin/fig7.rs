//! Fig. 7 — diagnosing naturally occurring miscalibrations.
//!
//! Replays the paper's observed machine state after 15 minutes of idling:
//! most couplings drift within the ±6% calibration band while {3,4},
//! {2,5} and {5,7} develop large under-rotations. Panel C is the direct
//! MS-gate angle snapshot; panels A/B are the single-output test battery;
//! the sequential multi-fault diagnosis then recovers all three faults —
//! including the two bit-complementary pairs {3,4} and {2,5}, which are
//! invisible to the first round and only fall to the adaptive round
//! (footnote 9's "no positive test results" case).
//!
//! The machine construction and diagnosis live in
//! [`itqc_bench::natural_faults`], shared with the tier-2 statistical
//! regression suite; the closing Monte-Carlo sweep re-draws the ambient
//! drift `--trials` times on the parallel trial engine, so stdout is
//! byte-identical at any `--threads` value.

use itqc_bench::natural_faults::{
    fig7_config, fig7_diagnose, fig7_expected, fig7_recovery_rate, fig7_trap, FIG7_QUBITS,
};
use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::Args;
use itqc_circuit::Coupling;
use itqc_core::{first_round_classes, LabelSpace, TestSpec};
use itqc_trap::Activity;
use std::collections::BTreeSet;

fn main() {
    let args = Args::parse(24);
    section("Fig. 7: natural miscalibrations after 15 minutes of idling");
    eprintln!("[fig7] running on {} thread(s)", args.threads());

    let mut trap = fig7_trap(args.seed_for("fig7"), args.seed_for("fig7/ambient"));

    // ---- Panel C: direct MS-gate quality snapshot --------------------
    section("panel C: XX-angle snapshot (300 shots per coupling)");
    let mut snapshot = trap.snapshot_under_rotations(300);
    snapshot.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    let mut t = Table::new(["coupling", "under-rotation", "zone"]);
    for (c, u) in &snapshot {
        let zone = if u.abs() > 0.10 {
            ">10% (recalibration threshold)"
        } else if u.abs() > 0.06 {
            "6-10%"
        } else {
            "within 6% band"
        };
        t.row([c.to_string(), pct(*u), zone.to_string()]);
    }
    println!("{}", t.render());

    // ---- Panels A/B: the test battery ---------------------------------
    section("panels A/B: first-round battery at 2MS and 4MS (300 shots)");
    let space = LabelSpace::new(FIG7_QUBITS);
    let none = BTreeSet::new();
    let mut battery = Table::new(["test", "2MS fid", "4MS fid", "8MS fid"]);
    for class in first_round_classes(&space) {
        let couplings = class.couplings(&space, &none);
        let mut cells = vec![format!("{class}")];
        for reps in [2usize, 4, 8] {
            let spec = TestSpec::for_couplings(format!("{class}"), &couplings, reps);
            let hits = trap.run_xx_test(&spec.gates, spec.target, 300, Activity::Testing);
            cells.push(f3(hits as f64 / 300.0));
        }
        battery.row(cells);
    }
    println!("{}", battery.render());
    println!(
        "(the ~15% faults {{3,4}} and {{2,5}} are bit-complementary: no first-round\n\
         test contains them — matching the paper's 'no positive test results'\n\
         observation for {{3,4}}; {{5,7}} trips classes (0,1) and (2,1))"
    );

    // ---- Sequential diagnosis ------------------------------------------
    section("sequential multi-fault diagnosis (Fig. 5 pipeline, fused ranked decoder)");
    let report = fig7_diagnose(&mut trap);
    let mut d = Table::new(["order", "coupling", "true u", "amplification"]);
    for (k, df) in report.diagnosed.iter().enumerate() {
        d.row([
            (k + 1).to_string(),
            df.coupling.to_string(),
            pct(trap.true_under_rotation(df.coupling)),
            format!("{}MS", df.reps),
        ]);
    }
    println!("{}", d.render());
    println!(
        "converged: {} | tests run: {} | adaptive rounds: {} (paper cost model: 4k+1 = {})",
        report.converged,
        report.tests_run,
        report.adaptations,
        4 * report.diagnosed.len() + 1
    );

    let expected: BTreeSet<Coupling> = fig7_expected().into_iter().collect();
    let found: BTreeSet<Coupling> = report.couplings().into_iter().collect();
    println!(
        "\nexpected faults {{3,4}}, {{2,5}}, {{5,7}} -> diagnosed: {}",
        if found == expected { "ALL THREE (match)" } else { "MISMATCH — see table above" }
    );

    // Recalibrate and confirm the machine is clean.
    for c in report.couplings() {
        trap.recalibrate(c);
    }
    let relevant = trap.couplings();
    let spec = TestSpec::for_couplings("post-recal canary", &relevant, 8);
    let hits = trap.run_xx_test(&spec.gates, spec.target, 300, Activity::Testing);
    println!("post-recalibration canary fidelity: {}", f3(hits as f64 / 300.0));

    // ---- Monte-Carlo recovery sweep ------------------------------------
    section(&format!("recovery rate over {} re-drawn ambient drifts", args.trials));
    let rate = fig7_recovery_rate(args.trials, args.threads, args.seed_for("fig7/mc"));
    println!(
        "P(recover exactly {{3,4}}, {{2,5}}, {{5,7}}) = {} (shots {} / trial; the\n\
         paper reports the single observed day qualitatively — all three found)",
        pct(rate),
        fig7_config().shots
    );
}
