//! Fig. 7 — diagnosing naturally occurring miscalibrations.
//!
//! Replays the paper's observed machine state after 15 minutes of idling:
//! most couplings drift within the ±6% calibration band while {3,4},
//! {2,5} and {5,7} develop large under-rotations. Panel C is the direct
//! MS-gate angle snapshot; panels A/B are the single-output test battery;
//! the sequential multi-fault diagnosis then recovers all three faults —
//! including the two bit-complementary pairs {3,4} and {2,5}, which are
//! invisible to the first round and only fall to the adaptive round
//! (footnote 9's "no positive test results" case).

use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::Args;
use itqc_circuit::Coupling;
use itqc_core::{diagnose_all, first_round_classes, LabelSpace, MultiFaultConfig, TestSpec};
use itqc_trap::{Activity, TrapConfig, VirtualTrap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const N: usize = 8;
// The paper's observed post-drift state (Fig. 7C): three outliers, the
// rest inside the ±6% band.
const OUTLIERS: [(usize, usize, f64); 3] = [(3, 4, 0.25), (2, 5, 0.16), (5, 7, 0.15)];

fn main() {
    let args = Args::parse(1);
    section("Fig. 7: natural miscalibrations after 15 minutes of idling");

    let mut trap = VirtualTrap::new(TrapConfig::ideal(N, args.seed_for("fig7")));
    let mut rng = SmallRng::seed_from_u64(args.seed_for("fig7/ambient"));
    for c in trap.couplings() {
        trap.inject_fault(c, rng.gen_range(-0.06..0.06));
    }
    for (a, b, u) in OUTLIERS {
        trap.inject_fault(Coupling::new(a, b), u);
    }

    // ---- Panel C: direct MS-gate quality snapshot --------------------
    section("panel C: XX-angle snapshot (300 shots per coupling)");
    let mut snapshot = trap.snapshot_under_rotations(300);
    snapshot.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    let mut t = Table::new(["coupling", "under-rotation", "zone"]);
    for (c, u) in &snapshot {
        let zone = if u.abs() > 0.10 {
            ">10% (recalibration threshold)"
        } else if u.abs() > 0.06 {
            "6-10%"
        } else {
            "within 6% band"
        };
        t.row([c.to_string(), pct(*u), zone.to_string()]);
    }
    println!("{}", t.render());

    // ---- Panels A/B: the test battery ---------------------------------
    section("panels A/B: first-round battery at 2MS and 4MS (300 shots)");
    let space = LabelSpace::new(N);
    let none = BTreeSet::new();
    let mut battery = Table::new(["test", "2MS fid", "4MS fid", "8MS fid"]);
    for class in first_round_classes(&space) {
        let couplings = class.couplings(&space, &none);
        let mut cells = vec![format!("{class}")];
        for reps in [2usize, 4, 8] {
            let spec = TestSpec::for_couplings(format!("{class}"), &couplings, reps);
            let hits = trap.run_xx_test(&spec.gates, spec.target, 300, Activity::Testing);
            cells.push(f3(hits as f64 / 300.0));
        }
        battery.row(cells);
    }
    println!("{}", battery.render());
    println!(
        "(the ~15% faults {{3,4}} and {{2,5}} are bit-complementary: no first-round\n\
         test contains them — matching the paper's 'no positive test results'\n\
         observation for {{3,4}}; {{5,7}} trips classes (0,1) and (2,1))"
    );

    // ---- Sequential diagnosis ------------------------------------------
    section("sequential multi-fault diagnosis (Fig. 5 pipeline)");
    let config = MultiFaultConfig {
        reps_ladder: vec![8],
        threshold: 0.5,
        canary_threshold: 0.12,
        shots: 300,
        canary_shots: 300,
        max_faults: 5,
        decoder: itqc_core::DecoderPolicy::Ranked,
        ranked_sigma: itqc_core::threshold::observation_sigma(300, 0.02, 8),
        score: itqc_core::testplan::ScoreMode::ExactTarget,
        canary_score: itqc_core::testplan::ScoreMode::ExactTarget,
        max_threshold_retunes: 4,
        fault_magnitude: 0.10,
    };
    let report = diagnose_all(&mut trap, N, &config);
    let mut d = Table::new(["order", "coupling", "true u", "amplification"]);
    for (k, df) in report.diagnosed.iter().enumerate() {
        d.row([
            (k + 1).to_string(),
            df.coupling.to_string(),
            pct(trap.true_under_rotation(df.coupling)),
            format!("{}MS", df.reps),
        ]);
    }
    println!("{}", d.render());
    println!(
        "converged: {} | tests run: {} | adaptive rounds: {} (paper cost model: 4k+1 = {})",
        report.converged,
        report.tests_run,
        report.adaptations,
        4 * report.diagnosed.len() + 1
    );

    let expected: BTreeSet<Coupling> =
        OUTLIERS.iter().map(|&(a, b, _)| Coupling::new(a, b)).collect();
    let found: BTreeSet<Coupling> = report.couplings().into_iter().collect();
    println!(
        "\nexpected faults {{3,4}}, {{2,5}}, {{5,7}} -> diagnosed: {}",
        if found == expected { "ALL THREE (match)" } else { "MISMATCH — see table above" }
    );

    // Recalibrate and confirm the machine is clean.
    for c in report.couplings() {
        trap.recalibrate(c);
    }
    let relevant = trap.couplings();
    let spec = TestSpec::for_couplings("post-recal canary", &relevant, 8);
    let hits = trap.run_xx_test(&spec.gates, spec.target, 300, Activity::Testing);
    println!("post-recalibration canary fidelity: {}", f3(hits as f64 / 300.0));
}
