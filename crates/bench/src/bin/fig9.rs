//! Fig. 9 — identification probability vs spread of the fault
//! distribution.
//!
//! Every coupling's under-rotation is drawn from the paper's composite law
//! (uniform within the 6% calibration band + right-Gaussian tail of spread
//! σ, normalised by `a(σ) = 1/(0.06 + σ√(π/2))`, footnote 10). The
//! machine's "faults" are the k largest draws; the sequential multi-fault
//! pipeline must identify them. Panels A–F: success probability vs σ for
//! k = 1, 2, 3 and 2-MS / 4-MS ladders at N = 8, 16, 32. Panel G: sorted
//! samples of the composite law at σ = 0.05 and 0.15.
//!
//! Measurement lives in [`itqc_bench::fig9`] on the `par_trials` harness:
//! every `(σ, k)` point derives a private per-trial seed stream, so stdout
//! is byte-identical at any `--threads` value (the CI determinism job
//! diffs it) and the panels parallelize across cores.
//!
//! Expected shape (paper): wider spreads separate the faults in magnitude,
//! so identification improves with σ — and faster for the deeper 4-MS
//! tests.

use itqc_bench::fig9::{fig9_panel, FIG9_BAND, FIG9_SCORE, FIG9_SHOTS};
use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::Args;
use itqc_math::rng::{CompositeUnderRotation, Distribution};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let started = std::time::Instant::now();
    let args = Args::parse(60);
    itqc_bench::metrics::init(&args);
    let decoder = args.decoder();
    section(&format!(
        "Fig. 9: P(identify k largest faults) vs composite-law spread sigma ({decoder} decoder)"
    ));

    // Panel G first: the sampled distributions.
    section("panel G: sorted under-rotation samples (28 couplings, N = 8)");
    let mut rng = SmallRng::seed_from_u64(args.seed_for("fig9/panelG"));
    let mut g = Table::new(["rank", "sigma=0.05", "sigma=0.15"]);
    let mut cols = Vec::new();
    for sigma in [0.05, 0.15] {
        let law = CompositeUnderRotation::paper(sigma);
        let mut xs = law.sample_vec(&mut rng, 28);
        xs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        cols.push(xs);
    }
    for (r, (lo, hi)) in cols[0].iter().zip(&cols[1]).enumerate() {
        g.row([(r + 1).to_string(), pct(*lo), pct(*hi)]);
    }
    println!("{}", g.render());
    println!("(uniform body below the 6% calibration line + Gaussian tail outliers)\n");

    // Panels A–F.
    for reps in [2usize, 4] {
        for n in [8usize, 16, 32] {
            let tag = format!("fig9/n={n}/r={reps}");
            // Thresholds calibrated on the composite law's ambient body
            // (uniform ±6% within the band).
            let threshold = itqc_bench::ambient::calibrate_threshold_uniform_par(
                args.threads,
                n,
                reps,
                FIG9_BAND,
                FIG9_SCORE,
                FIG9_SHOTS,
                0.005,
                60,
                args.seed_for(&format!("{tag}/threshold")),
            );
            let panel = fig9_panel(
                n,
                reps,
                threshold,
                args.trials,
                args.threads,
                decoder,
                args.seed_for(&tag),
            );
            section(&format!("{n} qubits, {reps}-MS ladder (threshold {})", f3(threshold)));
            let mut table = Table::new(["sigma", "k=1", "k=2", "k=3"]);
            for row in &panel.rows {
                let mut cells = vec![format!("{:.2}", row.sigma)];
                cells.extend(row.p_identify.iter().map(|&p| f3(p)));
                table.row(cells);
            }
            println!("{}", table.render());
            if args.csv {
                println!("{}", table.to_csv());
            }
        }
    }
    println!(
        "expected shape: identification improves with sigma (larger spread separates\n\
         fault magnitudes); multi-fault identification is harder at larger N; the\n\
         4-MS ladder improves faster than 2-MS (higher contrast)."
    );
    if args.cost_report {
        let prediction = itqc_bench::cost_report::fig9_prediction(args.trials);
        itqc_bench::cost_report::emit("fig9", &prediction, started.elapsed());
    }
    itqc_bench::metrics::emit_if_requested("fig9", &args, started.elapsed());
}
