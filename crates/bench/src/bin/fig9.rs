//! Fig. 9 — identification probability vs spread of the fault
//! distribution.
//!
//! Every coupling's under-rotation is drawn from the paper's composite law
//! (uniform within the 6% calibration band + right-Gaussian tail of spread
//! σ, normalised by `a(σ) = 1/(0.06 + σ√(π/2))`, footnote 10). The
//! machine's "faults" are the k largest draws; the sequential multi-fault
//! pipeline must identify them. Panels A–F: success probability vs σ for
//! k = 1, 2, 3 and 2-MS / 4-MS ladders at N = 8, 16, 32. Panel G: sorted
//! samples of the composite law at σ = 0.05 and 0.15.
//!
//! Expected shape (paper): wider spreads separate the faults in magnitude,
//! so identification improves with σ — and faster for the deeper 4-MS
//! tests.

use itqc_bench::output::{f3, pct, section, Table};
use itqc_bench::{Args, ShotSampled};
use itqc_core::testplan::ScoreMode;
use itqc_core::{diagnose_all, ExactExecutor, LabelSpace, MultiFaultConfig};
use itqc_math::rng::{CompositeUnderRotation, Distribution};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SHOTS: usize = 300;
const SCORE: ScoreMode = ScoreMode::WorstQubit;

/// One trial, following the Fig. 9 caption: k faulty gates draw their
/// under-rotations from the right-Gaussian tail at the 6% line with
/// spread σ, "in the presence of uniformly spread under-rotation up to
/// 6%" on every other coupling. Larger σ separates the faults from the
/// body (and from each other), which is exactly why identification
/// improves with spread. The pipeline must find all k tail faults.
fn trial<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    sigma: f64,
    base_reps: usize,
    threshold: f64,
    decoder: itqc_core::DecoderPolicy,
    rng: &mut R,
) -> bool {
    let space = LabelSpace::new(n);
    let all = space.all_couplings();
    // Body: uniform within the calibration band.
    let mut draws: Vec<f64> = all.iter().map(|_| rng.gen_range(0.0..0.06)).collect();
    // Tail: k faults at 0.06 + |N(0, σ)| on distinct random couplings.
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < k {
        chosen.insert(rng.gen_range(0..all.len()));
    }
    for &i in &chosen {
        draws[i] = 0.06 + (sigma * itqc_math::rng::standard_normal(rng)).abs();
    }
    let truth: std::collections::BTreeSet<_> = chosen.iter().map(|&i| all[i]).collect();

    let exec = ExactExecutor::new(n).with_faults(all.iter().copied().zip(draws.iter().copied()));
    let mut shot_exec = ShotSampled::new(exec, rng.gen());
    let config = MultiFaultConfig {
        reps_ladder: vec![base_reps, base_reps * 2, base_reps * 4],
        threshold,
        canary_threshold: threshold,
        shots: SHOTS,
        canary_shots: SHOTS,
        max_faults: k + 2,
        decoder,
        // Shot-sampled scores over a ±6% uniform ambient body.
        ranked_sigma: itqc_core::threshold::observation_sigma(SHOTS, 0.03, base_reps),
        score: SCORE,
        canary_score: SCORE,
        max_threshold_retunes: 4,
        fusion_rounds: 2,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    };
    let report = diagnose_all(&mut shot_exec, n, &config);
    let found: std::collections::BTreeSet<_> = report.couplings().into_iter().collect();
    truth.is_subset(&found)
}

fn main() {
    let args = Args::parse(60);
    let decoder = args.decoder();
    section(&format!(
        "Fig. 9: P(identify k largest faults) vs composite-law spread sigma ({decoder} decoder)"
    ));

    let sigmas = [0.02, 0.05, 0.08, 0.11, 0.15, 0.20];

    // Panel G first: the sampled distributions.
    section("panel G: sorted under-rotation samples (28 couplings, N = 8)");
    let mut rng = SmallRng::seed_from_u64(args.seed_for("fig9/panelG"));
    let mut g = Table::new(["rank", "sigma=0.05", "sigma=0.15"]);
    let mut cols = Vec::new();
    for sigma in [0.05, 0.15] {
        let law = CompositeUnderRotation::paper(sigma);
        let mut xs = law.sample_vec(&mut rng, 28);
        xs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        cols.push(xs);
    }
    for (r, (lo, hi)) in cols[0].iter().zip(&cols[1]).enumerate() {
        g.row([(r + 1).to_string(), pct(*lo), pct(*hi)]);
    }
    println!("{}", g.render());
    println!("(uniform body below the 6% calibration line + Gaussian tail outliers)\n");

    // Panels A–F.
    for reps in [2usize, 4] {
        for n in [8usize, 16, 32] {
            let tag = format!("fig9/n={n}/r={reps}");
            let mut rng = SmallRng::seed_from_u64(args.seed_for(&tag));
            // Thresholds calibrated on the composite law's ambient body
            // (uniform ±6% within the band).
            let threshold = itqc_bench::ambient::calibrate_threshold_uniform_par(
                args.threads,
                n,
                reps,
                0.06,
                SCORE,
                SHOTS,
                0.005,
                60,
                args.seed_for(&format!("{tag}/threshold")),
            );
            section(&format!("{n} qubits, {reps}-MS ladder (threshold {})", f3(threshold)));
            let mut table = Table::new(["sigma", "k=1", "k=2", "k=3"]);
            for &sigma in &sigmas {
                let mut cells = vec![format!("{sigma:.2}")];
                for k in 1..=3usize {
                    let ok = (0..args.trials)
                        .filter(|_| trial(n, k, sigma, reps, threshold, decoder, &mut rng))
                        .count();
                    cells.push(f3(ok as f64 / args.trials as f64));
                }
                table.row(cells);
            }
            println!("{}", table.render());
            if args.csv {
                println!("{}", table.to_csv());
            }
        }
    }
    println!(
        "expected shape: identification improves with sigma (larger spread separates\n\
         fault magnitudes); multi-fault identification is harder at larger N; the\n\
         4-MS ladder improves faster than 2-MS (higher contrast)."
    );
}
