//! Table I — the fault taxonomy of ion-trap quantum computers.
//!
//! Prints the four (determinism × unitarity) quadrants with their member
//! fault mechanisms and each mechanism's time scale, plus which quadrant
//! the paper's protocols target.

use itqc_bench::output::section;
use itqc_bench::Args;
use itqc_faults::taxonomy::{table_one, Determinism, FaultKind, Unitarity};

fn main() {
    // Table I is a static taxonomy (no Monte-Carlo loop); parsing the
    // shared Args keeps its CLI (`--threads`, `--seed`, …) uniform with
    // the other binaries.
    let _args = Args::parse(1);
    section("Table I: types of quantum faults (determinism x unitarity)");
    for cell in table_one() {
        let det = match cell.determinism {
            Determinism::Deterministic => "DETERMINISTIC",
            Determinism::Stochastic => "STOCHASTIC",
        };
        let uni = match cell.unitarity {
            Unitarity::Unitary => "UNITARY",
            Unitarity::NonUnitary => "NON-UNITARY",
        };
        println!("[{det} x {uni}]");
        for kind in &cell.kinds {
            println!("    - {} (time scale: {:?})", kind.description(), kind.time_scale());
        }
        println!();
    }

    section("Protocol targets (dominant faults, paper SIII)");
    for kind in FaultKind::ALL {
        if kind.is_recalibration_target() {
            println!("    * {}", kind.description());
        }
    }
    println!(
        "\nThe testing protocols target the deterministic-unitary quadrant:\n\
         these faults accumulate coherently under gate repetition and are\n\
         removable by recalibrating the affected coupling."
    );
}
