//! The Fig. 11 coupling-utilisation census, shared between the `fig11`
//! binary and the tier-2 regression suite.
//!
//! Generates a representative algorithm suite ("real-life quantum
//! circuits", standing in for the workload set of the paper's ref. 27),
//! lowers each circuit to the native ion gate set, and counts the
//! distinct couplings exercised. The paper observes average utilisation
//! around ~1/3 of all `C(N,2)` couplings — the headroom that lets
//! circuits be mapped *around* diagnosed faulty couplings instead of
//! recalibrating immediately (§VIII).
//!
//! Each suite entry transpiles independently on [`crate::par_map`] with
//! its own [`split_seed`] stream for the randomised circuits, so the
//! census is bit-identical at any thread count.

use crate::{par_map, split_seed};
use itqc_circuit::{library, transpile, Circuit};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The qubit counts the suite sweeps.
pub const FIG11_SIZES: [usize; 10] = [4, 6, 8, 10, 12, 16, 20, 24, 28, 32];

/// One circuit of the census suite (deterministic descriptor; the
/// randomised entries carry their own seed stream).
#[derive(Clone, Debug)]
pub enum CircuitSpec {
    /// Quantum Fourier transform on `n` qubits.
    Qft(usize),
    /// GHZ state preparation on `n` qubits.
    Ghz(usize),
    /// Bernstein–Vazirani with an all-ones secret on `bits` bits.
    BernsteinVazirani(usize),
    /// 2-layer QAOA MaxCut on a random 3-regular graph of `n` nodes.
    Qaoa3Regular(usize),
    /// 2-layer hardware-efficient VQE ansatz on `n` qubits.
    Vqe(usize),
    /// 3-step Trotterised transverse-field Ising evolution.
    Ising(usize),
    /// Cuccaro ripple-carry adder on `bits`-bit operands.
    Adder(usize),
    /// Grover search (capped at 6 qubits, 1 iteration).
    Grover(usize),
    /// W-state preparation on `n` qubits.
    WState(usize),
    /// Phase estimation with `bits` counting bits.
    PhaseEstimation(usize),
    /// Depth-4 random circuit on `n` qubits.
    Random(usize),
}

impl CircuitSpec {
    /// Display name matching the binary's table rows.
    pub fn name(&self) -> String {
        match *self {
            CircuitSpec::Qft(n) => format!("qft-{n}"),
            CircuitSpec::Ghz(n) => format!("ghz-{n}"),
            CircuitSpec::BernsteinVazirani(bits) => format!("bv-{bits}"),
            CircuitSpec::Qaoa3Regular(n) => format!("qaoa3r-{n}"),
            CircuitSpec::Vqe(n) => format!("vqe-{n}"),
            CircuitSpec::Ising(n) => format!("ising-{n}"),
            CircuitSpec::Adder(bits) => format!("adder-{bits}b"),
            CircuitSpec::Grover(n) => format!("grover-{n}"),
            CircuitSpec::WState(n) => format!("wstate-{n}"),
            CircuitSpec::PhaseEstimation(bits) => format!("qpe-{bits}b"),
            CircuitSpec::Random(n) => format!("random-{n}"),
        }
    }

    /// Builds the circuit; `rng` feeds only the randomised entries.
    pub fn build(&self, rng: &mut SmallRng) -> Circuit {
        match *self {
            CircuitSpec::Qft(n) => library::qft(n),
            CircuitSpec::Ghz(n) => library::ghz(n),
            CircuitSpec::BernsteinVazirani(bits) => {
                library::bernstein_vazirani((1 << bits) - 1, bits)
            }
            CircuitSpec::Qaoa3Regular(n) => {
                let edges = library::random_3_regular(n, rng);
                library::qaoa_maxcut(n, &edges, &[(0.4, 0.8), (0.7, 0.3)])
            }
            CircuitSpec::Vqe(n) => library::vqe_ansatz(n, 2, &[0.3, 0.5, 0.7]),
            CircuitSpec::Ising(n) => library::trotter_ising(n, 3, 1.0, 0.7, 0.1),
            CircuitSpec::Adder(bits) => library::cuccaro_adder(bits),
            CircuitSpec::Grover(n) => library::grover(n.min(6), 1, 2),
            CircuitSpec::WState(n) => library::w_state(n),
            CircuitSpec::PhaseEstimation(bits) => library::phase_estimation(bits, 0.3),
            CircuitSpec::Random(n) => library::random_circuit(n, 4, rng),
        }
    }
}

/// The full suite, in table order.
pub fn fig11_specs() -> Vec<CircuitSpec> {
    let mut specs = Vec::new();
    for &n in &FIG11_SIZES {
        specs.push(CircuitSpec::Qft(n));
        specs.push(CircuitSpec::Ghz(n));
        specs.push(CircuitSpec::BernsteinVazirani(n - 1));
        specs.push(CircuitSpec::Qaoa3Regular(n));
        specs.push(CircuitSpec::Vqe(n));
        specs.push(CircuitSpec::Ising(n));
        if n >= 6 && n % 2 == 0 && (n - 2) / 2 >= 1 {
            specs.push(CircuitSpec::Adder((n - 2) / 2));
        }
        if n <= 10 {
            specs.push(CircuitSpec::Grover(n));
        }
        specs.push(CircuitSpec::WState(n));
        if n <= 12 {
            specs.push(CircuitSpec::PhaseEstimation(n - 1));
        }
        specs.push(CircuitSpec::Random(n));
    }
    specs
}

/// One census row: a circuit, its size, and its coupling utilisation
/// after native transpilation.
#[derive(Clone, Debug)]
pub struct CensusRow {
    /// Circuit name.
    pub name: String,
    /// Register size after lowering.
    pub qubits: usize,
    /// Distinct couplings exercised.
    pub used: usize,
    /// All `C(N,2)` couplings.
    pub total: usize,
    /// `used / total`.
    pub fraction: f64,
}

/// Transpiles and censuses the whole suite. Each entry owns a seed
/// stream derived from `seed` and its index, so rows are identical at
/// any thread count.
pub fn fig11_rows(seed: u64, threads: usize) -> Vec<CensusRow> {
    let specs = fig11_specs();
    par_map(threads, specs.len(), |i| {
        let spec = &specs[i];
        let mut rng = SmallRng::seed_from_u64(split_seed(seed, i));
        let circuit = spec.build(&mut rng);
        let native = transpile::to_native_optimized(&circuit);
        let n = native.n_qubits();
        let used = native.used_couplings().len();
        let total = n * (n - 1) / 2;
        CensusRow {
            name: spec.name(),
            qubits: n,
            used,
            total,
            fraction: used as f64 / total as f64,
        }
    })
}

/// Mean utilised fraction per register size, in ascending size order.
pub fn fraction_by_size(rows: &[CensusRow]) -> Vec<(usize, f64, f64)> {
    let mut by_n: BTreeMap<usize, Vec<&CensusRow>> = BTreeMap::new();
    for row in rows {
        by_n.entry(row.qubits).or_default().push(row);
    }
    by_n.into_iter()
        .map(|(n, items)| {
            let avg_used = items.iter().map(|r| r.used as f64).sum::<f64>() / items.len() as f64;
            let avg_frac = items.iter().map(|r| r.fraction).sum::<f64>() / items.len() as f64;
            (n, avg_used, avg_frac)
        })
        .collect()
}

/// The suite-average utilised fraction — the number compared against
/// the paper's "~1/3 of all couplings" line.
pub fn suite_average_fraction(rows: &[CensusRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.fraction).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_is_thread_invariant() {
        let a = fig11_rows(3, 1);
        let b = fig11_rows(3, 8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.name.as_str(), x.used, x.total), (y.name.as_str(), y.used, y.total));
        }
    }

    #[test]
    fn ghz_uses_a_chain() {
        // GHZ lowers to a CX chain: exactly n−1 couplings.
        let rows = fig11_rows(3, 0);
        for row in rows.iter().filter(|r| r.name.starts_with("ghz-")) {
            assert_eq!(row.used, row.qubits - 1, "{}", row.name);
        }
    }
}
