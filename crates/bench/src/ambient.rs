//! Ambient-calibration machinery shared by the scaling experiments.

use itqc_backend::BackendChoice;
use itqc_circuit::Coupling;
use itqc_core::testplan::ScoreMode;
use itqc_core::{first_round_classes, ExactExecutor, LabelSpace, TestSpec};
use itqc_math::rng::standard_normal;
use itqc_math::stats;
use rand::Rng;
use std::collections::BTreeSet;

/// Builds an exact executor whose every coupling carries an ambient
/// calibration error drawn `N(0, σ)` with `E|u| = mean_abs` (the paper's
/// "10% average calibration error"), then overlays the given planted
/// faults.
pub fn ambient_executor<R: Rng + ?Sized>(
    n_qubits: usize,
    mean_abs: f64,
    planted: &[(Coupling, f64)],
    rng: &mut R,
) -> ExactExecutor {
    let space = LabelSpace::new(n_qubits);
    let sigma = mean_abs * (std::f64::consts::PI / 2.0).sqrt();
    let mut exec = ExactExecutor::new(n_qubits)
        .with_faults(space.all_couplings().into_iter().map(|c| (c, sigma * standard_normal(rng))));
    exec = exec.with_faults(planted.iter().copied());
    exec
}

/// Machine size above which the uniform ambient model switches from
/// per-coupling i.i.d. draws to one *common-mode* draw shared by every
/// coupling. Beyond the paper's 32-qubit ceiling a first-round class is
/// a complete component larger than twice [`itqc_backend::MAX_COMPONENT`]
/// qubits, sampleable only by the conditional-marginal chain engine —
/// which needs the component's couplings to share one base angle up to
/// a small deviant set. Per-coupling i.i.d. errors would make *every*
/// pair deviant; a common-mode miscalibration (all couplings driven by
/// one drifted master amplitude, with the planted faults overlaid on
/// top) keeps the beyond-paper sweeps honest while staying physically
/// meaningful. At or below this size nothing changes: the per-coupling
/// model and its RNG stream are byte-identical to previous releases.
pub const COMMON_MODE_MIN_QUBITS: usize = 2 * itqc_backend::MAX_COMPONENT;

/// Builds an exact executor with *uniform* ambient calibration error —
/// per-coupling `u ~ U(−bound, bound)` draws up to
/// [`COMMON_MODE_MIN_QUBITS`] qubits (the reading of the paper's "10%
/// random amplitude errors" used by the Fig. 8/9 scaling studies, see
/// DESIGN.md §3.3), one common-mode draw shared by all couplings above
/// it — then overlays the planted faults.
pub fn ambient_executor_uniform<R: Rng + ?Sized>(
    n_qubits: usize,
    bound: f64,
    planted: &[(Coupling, f64)],
    rng: &mut R,
) -> ExactExecutor {
    let space = LabelSpace::new(n_qubits);
    let mut exec = if n_qubits > COMMON_MODE_MIN_QUBITS {
        let u = rng.gen_range(-bound..bound);
        ExactExecutor::new(n_qubits).with_faults(space.all_couplings().into_iter().map(|c| (c, u)))
    } else {
        ExactExecutor::new(n_qubits).with_faults(
            space.all_couplings().into_iter().map(|c| (c, rng.gen_range(-bound..bound))),
        )
    };
    exec = exec.with_faults(planted.iter().copied());
    exec
}

/// [`ambient_executor_uniform`] routed through a simulation backend
/// (same RNG consumption, so the ambient profile is identical) — the
/// entry point of the backend-selected Fig. 8 detectability study.
pub fn ambient_executor_uniform_with<R: Rng + ?Sized>(
    n_qubits: usize,
    bound: f64,
    planted: &[(Coupling, f64)],
    backend: BackendChoice,
    rng: &mut R,
) -> ExactExecutor {
    ambient_executor_uniform(n_qubits, bound, planted, rng).with_backend(backend)
}

/// Calibrates a pass/fail threshold for the scaling experiments: the
/// `quantile` of fault-free first-round test scores under uniform ambient
/// error, for the given depth and score mode. With `shots > 0` the scores
/// include binomial shot noise — essential, since the protocol compares
/// *sampled* scores against this threshold (a threshold calibrated on
/// exact scores sits inside the shot-noise band and healthy tests would
/// false-fail). The returned cut is floored onto the `k/shots` score
/// grid ([`itqc_core::threshold::snap_to_shot_grid`]) so an interpolated
/// quantile cannot fail the very score levels the calibration observed;
/// the string-sampled and parallel calibrators below snap identically.
#[allow(clippy::too_many_arguments)]
pub fn calibrate_threshold_uniform<R: Rng + ?Sized>(
    n_qubits: usize,
    reps: usize,
    ambient_bound: f64,
    score: ScoreMode,
    shots: usize,
    quantile: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut scores = Vec::new();
    for _ in 0..trials {
        fault_free_trial_scores(n_qubits, reps, ambient_bound, score, shots, rng, &mut scores);
    }
    itqc_core::threshold::snap_to_shot_grid(stats::quantile(&scores, quantile), shots)
}

/// The fault-free first-round class battery every threshold calibrator
/// scores: one spec per non-empty class (consumes no RNG).
fn calibration_battery(n_qubits: usize, reps: usize, score: ScoreMode) -> Vec<TestSpec> {
    let space = LabelSpace::new(n_qubits);
    let none = BTreeSet::new();
    first_round_classes(&space)
        .into_iter()
        .filter_map(|class| {
            let couplings = class.couplings(&space, &none);
            if couplings.is_empty() {
                return None;
            }
            Some(TestSpec::for_couplings("amb", &couplings, reps).with_score(score))
        })
        .collect()
}

/// One calibration trial shared by the serial and parallel threshold
/// calibrators: draws a fault-free ambient machine and appends the
/// (optionally shot-sampled) score of every non-empty first-round
/// class to `scores`.
fn fault_free_trial_scores<R: Rng + ?Sized>(
    n_qubits: usize,
    reps: usize,
    ambient_bound: f64,
    score: ScoreMode,
    shots: usize,
    rng: &mut R,
    scores: &mut Vec<f64>,
) {
    let exec = ambient_executor_uniform(n_qubits, ambient_bound, &[], rng);
    for spec in calibration_battery(n_qubits, reps, score) {
        let exact = exec.exact_score(&spec);
        let observed = if shots == 0 {
            exact
        } else {
            itqc_sim::shots::binomial(rng, shots, exact.clamp(0.0, 1.0)) as f64 / shots as f64
        };
        scores.push(observed);
    }
}

/// String-statistic threshold calibration for the backend-routed
/// detectability study: like [`calibrate_threshold_uniform_par`], but
/// every score is computed from `shots` *sampled output strings* via
/// [`crate::StringSampled`] — the same statistic the protocol under
/// test thresholds, which matters because the minimum over correlated
/// per-qubit counts sits systematically below a binomial draw of the
/// exact minimum marginal. Thread-invariant via per-trial seed streams.
#[allow(clippy::too_many_arguments)]
pub fn calibrate_threshold_strings_par(
    threads: usize,
    n_qubits: usize,
    reps: usize,
    ambient_bound: f64,
    score: ScoreMode,
    shots: usize,
    quantile: f64,
    trials: usize,
    backend: BackendChoice,
    master_seed: u64,
) -> f64 {
    let per_trial = crate::par_trials::par_trials(
        threads,
        trials,
        |t| crate::par_trials::split_seed(master_seed, t),
        |_, rng| {
            use itqc_core::TestExecutor;
            let exec = ambient_executor_uniform_with(n_qubits, ambient_bound, &[], backend, rng);
            let mut sampler = crate::StringSampled::new(exec, rng.gen());
            calibration_battery(n_qubits, reps, score)
                .iter()
                .map(|spec| sampler.run_test(spec, shots))
                .collect::<Vec<f64>>()
        },
    );
    let scores: Vec<f64> = per_trial.into_iter().flatten().collect();
    itqc_core::threshold::snap_to_shot_grid(stats::quantile(&scores, quantile), shots)
}

/// Parallel version of [`calibrate_threshold_uniform`]: trials run on
/// the [`crate::par_trials`] engine with one seeded RNG stream per
/// trial derived from `master_seed`, so the returned threshold is
/// identical at any thread count (it does **not** reproduce the serial
/// function's value, which threads a single stream through all trials).
#[allow(clippy::too_many_arguments)]
pub fn calibrate_threshold_uniform_par(
    threads: usize,
    n_qubits: usize,
    reps: usize,
    ambient_bound: f64,
    score: ScoreMode,
    shots: usize,
    quantile: f64,
    trials: usize,
    master_seed: u64,
) -> f64 {
    let per_trial = crate::par_trials::par_trials(
        threads,
        trials,
        |t| crate::par_trials::split_seed(master_seed, t),
        |_, rng| {
            let mut scores = Vec::new();
            fault_free_trial_scores(n_qubits, reps, ambient_bound, score, shots, rng, &mut scores);
            scores
        },
    );
    let scores: Vec<f64> = per_trial.into_iter().flatten().collect();
    itqc_core::threshold::snap_to_shot_grid(stats::quantile(&scores, quantile), shots)
}

/// Draws `k` distinct random couplings on an `n_qubits` machine.
pub fn random_couplings<R: Rng + ?Sized>(n_qubits: usize, k: usize, rng: &mut R) -> Vec<Coupling> {
    let all = LabelSpace::new(n_qubits).all_couplings();
    assert!(k <= all.len(), "cannot pick {k} of {} couplings", all.len());
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        picked.insert(rng.gen_range(0..all.len()));
    }
    picked.into_iter().map(|i| all[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn planted_faults_override_ambient() {
        let mut rng = SmallRng::seed_from_u64(1);
        let c = Coupling::new(0, 3);
        let exec = ambient_executor(8, 0.05, &[(c, 0.4)], &mut rng);
        let spec = itqc_core::TestSpec::for_couplings("t", &[c], 4);
        let f = exec.exact_fidelity(&spec);
        let expect = (std::f64::consts::PI * 0.4).cos().powi(2);
        assert!((f - expect).abs() < 1e-9);
    }

    #[test]
    fn par_threshold_invariant_under_thread_count() {
        let t1 = calibrate_threshold_uniform_par(
            1,
            8,
            2,
            0.10,
            ScoreMode::ExactTarget,
            300,
            0.01,
            6,
            77,
        );
        let t8 = calibrate_threshold_uniform_par(
            8,
            8,
            2,
            0.10,
            ScoreMode::ExactTarget,
            300,
            0.01,
            6,
            77,
        );
        assert_eq!(t1, t8);
        assert!((0.0..=1.0).contains(&t1), "threshold {t1}");
    }

    #[test]
    fn random_couplings_are_distinct() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cs = random_couplings(8, 5, &mut rng);
        assert_eq!(cs.len(), 5);
        let set: std::collections::BTreeSet<_> = cs.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
