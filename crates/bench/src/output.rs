//! Aligned-table rendering for harness output.

use std::fmt::Write as _;

/// A simple column-aligned text table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for k in 0..cols {
                let _ = write!(out, "{:>width$}", cells[k], width = widths[k] + 2);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability/fidelity with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["a", "long_header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2.5"]);
        assert_eq!(t.to_csv(), "x,y\n1,2.5\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }
}
