//! Shot-sampling wrapper around any exact executor.

use itqc_core::executor::TestExecutor;
use itqc_core::TestSpec;
use itqc_sim::shots::binomial;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Wraps an exact executor and converts its fidelities into `shots`-shot
/// binomial estimates — the statistics a hardware run would report.
#[derive(Clone, Debug)]
pub struct ShotSampled<E> {
    inner: E,
    rng: SmallRng,
}

impl<E: TestExecutor> ShotSampled<E> {
    /// Wraps `inner` with a deterministic shot-noise stream.
    pub fn new(inner: E, seed: u64) -> Self {
        ShotSampled { inner, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Wraps `inner` with a shot-noise stream derived from a master
    /// seed and a trial index, so that trial `i` sees the same stream
    /// whether the trials run serially or across threads.
    pub fn for_trial(inner: E, master_seed: u64, trial: usize) -> Self {
        Self::new(inner, crate::par_trials::split_seed(master_seed, trial))
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: TestExecutor> TestExecutor for ShotSampled<E> {
    fn n_qubits(&self) -> usize {
        self.inner.n_qubits()
    }

    fn run_test(&mut self, spec: &TestSpec, shots: usize) -> f64 {
        let p = self.inner.run_test(spec, shots).clamp(0.0, 1.0);
        if shots == 0 {
            return p;
        }
        binomial(&mut self.rng, shots, p) as f64 / shots as f64
    }

    fn note_adaptation(&mut self, couplings_compiled: usize) {
        self.inner.note_adaptation(couplings_compiled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_circuit::Coupling;
    use itqc_core::ExactExecutor;

    #[test]
    fn for_trial_is_deterministic_and_decorrelated() {
        let exact = ExactExecutor::new(4);
        let a = ShotSampled::for_trial(exact.clone(), 99, 0);
        let b = ShotSampled::for_trial(exact.clone(), 99, 0);
        let c = ShotSampled::for_trial(exact, 99, 1);
        assert_eq!(a.rng, b.rng, "same (seed, trial) must give the same stream");
        assert_ne!(a.rng, c.rng, "different trials must give different streams");
    }

    #[test]
    fn shot_noise_stays_near_truth() {
        let exact = ExactExecutor::new(4).with_fault(Coupling::new(0, 1), 0.22);
        let mut wrapped = ShotSampled::new(exact, 7);
        let spec = TestSpec::for_couplings("t", &[Coupling::new(0, 1)], 4);
        let truth = (std::f64::consts::PI * 0.22).cos().powi(2);
        for _ in 0..20 {
            let f = wrapped.run_test(&spec, 300);
            assert!((f - truth).abs() < 0.12, "{f} vs {truth}");
        }
    }
}
