//! Shot-sampling wrappers around exact executors.
//!
//! Two fidelity-to-statistics converters:
//!
//! * [`ShotSampled`] — binomial sampling of the exact *score* (the
//!   historical wrapper; treats the worst-qubit statistic as if it were
//!   a single Bernoulli rate, which neglects cross-qubit correlations);
//! * [`StringSampled`] — samples genuine per-shot output *strings*
//!   through a simulation backend and recomputes the score exactly the
//!   way hardware post-processing would (exact-string hit fraction, or
//!   per-qubit agreement counts minimized over the support). The Fig. 8
//!   detectability study runs on this wrapper.

use itqc_core::executor::TestExecutor;
use itqc_core::testplan::ScoreMode;
use itqc_core::{ExactExecutor, TestSpec};
use itqc_sim::shots::binomial;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Wraps an exact executor and converts its fidelities into `shots`-shot
/// binomial estimates — the statistics a hardware run would report.
#[derive(Clone, Debug)]
pub struct ShotSampled<E> {
    inner: E,
    rng: SmallRng,
}

impl<E: TestExecutor> ShotSampled<E> {
    /// Wraps `inner` with a deterministic shot-noise stream.
    pub fn new(inner: E, seed: u64) -> Self {
        ShotSampled { inner, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Wraps `inner` with a shot-noise stream derived from a master
    /// seed and a trial index, so that trial `i` sees the same stream
    /// whether the trials run serially or across threads.
    pub fn for_trial(inner: E, master_seed: u64, trial: usize) -> Self {
        Self::new(inner, crate::par_trials::split_seed(master_seed, trial))
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: TestExecutor> TestExecutor for ShotSampled<E> {
    fn n_qubits(&self) -> usize {
        self.inner.n_qubits()
    }

    fn run_test(&mut self, spec: &TestSpec, shots: usize) -> f64 {
        let p = self.inner.run_test(spec, shots).clamp(0.0, 1.0);
        if shots == 0 {
            return p;
        }
        binomial(&mut self.rng, shots, p) as f64 / shots as f64
    }

    fn note_adaptation(&mut self, couplings_compiled: usize) {
        self.inner.note_adaptation(couplings_compiled);
    }
}

/// Wraps a backend-routed [`ExactExecutor`] and reports the statistic a
/// hardware run computes from its measured strings: sample `shots`
/// output strings from the prepared circuit's exact distribution, then
/// score them under the spec's own [`ScoreMode`].
///
/// Unlike [`ShotSampled`], the worst-qubit statistic here is the
/// minimum over *correlated* per-qubit agreement counts from one shared
/// set of shots — the honest population statistic of the paper's
/// scaling experiments.
#[derive(Clone, Debug)]
pub struct StringSampled {
    exec: ExactExecutor,
    rng: SmallRng,
}

impl StringSampled {
    /// Wraps `exec` with a deterministic shot stream.
    ///
    /// # Panics
    ///
    /// Panics if `exec` has no routed backend
    /// ([`ExactExecutor::with_backend`]) — string sampling needs one.
    pub fn new(exec: ExactExecutor, seed: u64) -> Self {
        assert!(exec.backend().is_some(), "StringSampled needs a backend-routed executor");
        StringSampled { exec, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Wraps `exec` with a stream derived from a master seed and trial
    /// index (same contract as [`ShotSampled::for_trial`]).
    pub fn for_trial(exec: ExactExecutor, master_seed: u64, trial: usize) -> Self {
        Self::new(exec, crate::par_trials::split_seed(master_seed, trial))
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &ExactExecutor {
        &self.exec
    }
}

impl TestExecutor for StringSampled {
    fn n_qubits(&self) -> usize {
        self.exec.n_qubits()
    }

    fn run_test(&mut self, spec: &TestSpec, shots: usize) -> f64 {
        if shots == 0 {
            return self.exec.exact_score(spec);
        }
        let prepared = self.exec.prepare(spec);
        // Blocked sampling: bit-identical to the per-shot path (the
        // equivalence suite pins it), but resolves each component's
        // draws in one pass over its flat cumulative table.
        let strings = prepared.sample_block(&mut self.rng, shots);
        match spec.score {
            ScoreMode::ExactTarget => {
                strings.iter().filter(|&&s| s == spec.target).count() as f64 / shots as f64
            }
            ScoreMode::WorstQubit => {
                let worst = prepared
                    .support()
                    .iter()
                    .map(|&q| {
                        let want = (spec.target >> q) & 1;
                        strings.iter().filter(|&&s| (s >> q) & 1 == want).count()
                    })
                    .min()
                    .unwrap_or(shots);
                worst as f64 / shots as f64
            }
        }
    }

    fn note_adaptation(&mut self, couplings_compiled: usize) {
        self.exec.note_adaptation(couplings_compiled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itqc_backend::BackendChoice;
    use itqc_circuit::Coupling;

    #[test]
    fn for_trial_is_deterministic_and_decorrelated() {
        let exact = ExactExecutor::new(4);
        let a = ShotSampled::for_trial(exact.clone(), 99, 0);
        let b = ShotSampled::for_trial(exact.clone(), 99, 0);
        let c = ShotSampled::for_trial(exact, 99, 1);
        assert_eq!(a.rng, b.rng, "same (seed, trial) must give the same stream");
        assert_ne!(a.rng, c.rng, "different trials must give different streams");
    }

    #[test]
    fn shot_noise_stays_near_truth() {
        let exact = ExactExecutor::new(4).with_fault(Coupling::new(0, 1), 0.22);
        let mut wrapped = ShotSampled::new(exact, 7);
        let spec = TestSpec::for_couplings("t", &[Coupling::new(0, 1)], 4);
        let truth = (std::f64::consts::PI * 0.22).cos().powi(2);
        for _ in 0..20 {
            let f = wrapped.run_test(&spec, 300);
            assert!((f - truth).abs() < 0.12, "{f} vs {truth}");
        }
    }

    #[test]
    fn string_sampling_converges_to_exact_scores() {
        let exec = ExactExecutor::new(6)
            .with_fault(Coupling::new(0, 1), 0.25)
            .with_fault(Coupling::new(2, 4), 0.10)
            .with_backend(BackendChoice::Analytic);
        let couplings = [Coupling::new(0, 1), Coupling::new(2, 4), Coupling::new(3, 5)];
        for score in [ScoreMode::ExactTarget, ScoreMode::WorstQubit] {
            let spec = TestSpec::for_couplings("t", &couplings, 4).with_score(score);
            let truth = exec.exact_score(&spec);
            let mut wrapped = StringSampled::new(exec.clone(), 11);
            let sampled = wrapped.run_test(&spec, 40_000);
            // The worst-qubit statistic is biased slightly *below* the
            // exact min marginal (min of noisy counts), so allow a loose
            // one-sided-ish band.
            assert!((sampled - truth).abs() < 0.02, "{score:?}: {sampled} vs {truth}");
            assert_eq!(wrapped.run_test(&spec, 0), truth, "0 shots must mean exact");
        }
    }

    #[test]
    fn string_sampling_is_deterministic_per_seed_and_backend_agnostic() {
        let build = |choice| {
            ExactExecutor::new(5).with_fault(Coupling::new(1, 3), 0.3).with_backend(choice)
        };
        let spec = TestSpec::for_couplings("t", &[Coupling::new(1, 3), Coupling::new(0, 4)], 2);
        let run = |choice| {
            let mut w = StringSampled::new(build(choice), 99);
            (0..5).map(|_| w.run_test(&spec, 300)).collect::<Vec<_>>()
        };
        assert_eq!(run(BackendChoice::Analytic), run(BackendChoice::Analytic));
        // Shared seed + canonical sampler: dense and analytic agree
        // bit-for-bit on the sampled scores.
        assert_eq!(run(BackendChoice::Analytic), run(BackendChoice::Dense));
    }
}
