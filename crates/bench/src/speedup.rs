//! The Fig. 10 testing-strategy speed-up study, shared between the
//! `fig10` binary and the tier-2 regression suite.
//!
//! Under the paper's cost assumptions (gate time scaling `(8/N)²` from
//! 0.2 ms, shallow-circuit runtime dominated by preparation + readout,
//! adaptive programs compiled on the fly vs a precompiled non-adaptive
//! family): the adaptive (binary-search) speed-up over all-couplings
//! point checks plateaus around 10³ — the ratio of per-point-check
//! processing to per-coupling compile time — while the non-adaptive
//! protocol's speed-up keeps growing as `N²/log N`.
//!
//! The model is deterministic; [`fig10_rows`] still runs on
//! [`crate::par_map`] so the row sweep parallelises and stays
//! bit-identical at any thread count.

use crate::par_map;
use itqc_core::cost::CostModel;

/// The machine sizes the paper's Fig. 10 sweeps.
pub const FIG10_SIZES: [usize; 11] = [8, 11, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// One row of the speed-up table.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Machine size `N`.
    pub qubits: usize,
    /// Wall-clock of the all-couplings point-check characterisation.
    pub point_check_s: f64,
    /// Wall-clock of the adaptive (binary-search) strategy.
    pub adaptive_s: f64,
    /// Wall-clock of the non-adaptive `O(log N)`-test strategy.
    pub non_adaptive_s: f64,
    /// Point-check / adaptive time ratio.
    pub speedup_adaptive: f64,
    /// Point-check / non-adaptive time ratio.
    pub speedup_non_adaptive: f64,
}

/// Evaluates the paper's cost model over [`FIG10_SIZES`].
pub fn fig10_rows(threads: usize) -> Vec<SpeedupRow> {
    let m = CostModel::paper_defaults();
    par_map(threads, FIG10_SIZES.len(), |i| {
        let n = FIG10_SIZES[i];
        SpeedupRow {
            qubits: n,
            point_check_s: m.point_check_time(n),
            adaptive_s: m.adaptive_time(n),
            non_adaptive_s: m.non_adaptive_time(n),
            speedup_adaptive: m.speedup_adaptive(n),
            speedup_non_adaptive: m.speedup_non_adaptive(n),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_thread_invariant() {
        let a = fig10_rows(1);
        let b = fig10_rows(8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.speedup_adaptive.to_bits(), y.speedup_adaptive.to_bits());
            assert_eq!(x.speedup_non_adaptive.to_bits(), y.speedup_non_adaptive.to_bits());
        }
    }

    #[test]
    fn non_adaptive_speedup_is_monotone() {
        let rows = fig10_rows(1);
        for w in rows.windows(2) {
            assert!(
                w[1].speedup_non_adaptive > w[0].speedup_non_adaptive,
                "non-adaptive speed-up must grow with N"
            );
        }
    }
}
