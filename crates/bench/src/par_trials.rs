//! Deterministic parallel Monte-Carlo trial execution.
//!
//! Every fig/table binary is dominated by a loop of independent trials
//! (simulated machine-days, noise trajectories, planted-fault diagnosis
//! sweeps). This module runs such loops across `N` std scoped threads
//! while keeping the results **bit-identical to the serial path at any
//! thread count**:
//!
//! * each trial gets its own freshly seeded [`SmallRng`] stream — no
//!   state is threaded from one trial into the next, so scheduling
//!   cannot change what a trial computes;
//! * workers pull trial indices from a shared atomic counter (work
//!   stealing, so uneven trials balance), tag every result with its
//!   index, and the engine restores index order before returning.
//!
//! Binaries expose the thread count as `--threads=N` via
//! [`crate::Args`]; `--threads=0` (the default) resolves to the
//! machine's available parallelism.
//!
//! # Example
//!
//! ```
//! use itqc_bench::par_trials::par_trials;
//!
//! let serial: Vec<f64> = par_trials(1, 64, |i| i as u64, |_, rng| {
//!     use rand::Rng;
//!     rng.gen::<f64>()
//! });
//! let parallel = par_trials(8, 64, |i| i as u64, |_, rng| {
//!     use rand::Rng;
//!     rng.gen::<f64>()
//! });
//! assert_eq!(serial, parallel);
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Derives a decorrelated per-trial seed from a master seed and a trial
/// index via a SplitMix64-style avalanche — the one seed-splitting
/// formula for every `par_trials` call site, so neighbouring trial
/// indices (or related master seeds) never yield correlated streams.
pub fn split_seed(master: u64, trial: usize) -> u64 {
    let mut z = master ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves a requested `--threads` value: `0` means "use all available
/// parallelism", anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `0..count` on up to `threads` scoped threads and
/// returns the results in index order.
///
/// `f` must derive everything it needs from the index alone (seed RNGs
/// per index, do not share mutable state) — then the output is
/// identical for every thread count.
pub fn par_map<T, F>(threads: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(count.max(1));
    if threads <= 1 || count <= 1 {
        let _span = itqc_obs::span::timed("bench.par_map.serial");
        return (0..count).map(f).collect();
    }
    let _span = itqc_obs::span::timed("bench.par_map.parallel");
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    // Fold this worker's ambient event shard into the
                    // global registry before the thread retires; the
                    // merge is commutative addition, so the registry's
                    // deterministic snapshot is the same at any thread
                    // count.
                    itqc_obs::event::flush();
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("trial worker panicked")).collect()
    });
    let _merge = itqc_obs::span::timed("bench.par_map.merge");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Runs `trials` independent Monte-Carlo trials on up to `threads`
/// threads. Trial `i` receives a [`SmallRng`] seeded with `seed_of(i)`
/// and the results come back in trial order — so the output is
/// bit-identical to a serial loop over the same seeds, at any thread
/// count.
pub fn par_trials<T, S, F>(threads: usize, trials: usize, seed_of: S, body: F) -> Vec<T>
where
    T: Send,
    S: Fn(usize) -> u64 + Sync,
    F: Fn(usize, &mut SmallRng) -> T + Sync,
{
    par_map(threads, trials, |i| {
        let mut rng = SmallRng::seed_from_u64(seed_of(i));
        body(i, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn run_at(threads: usize) -> Vec<f64> {
        par_trials(
            threads,
            37,
            |i| 1000 + i as u64,
            |i, rng| {
                // Uneven workloads exercise the work-stealing path.
                let reps = 1 + (i % 5) * 50;
                let mut acc = 0.0;
                for _ in 0..reps {
                    acc += rng.gen::<f64>();
                }
                acc
            },
        )
    }

    #[test]
    fn identical_at_any_thread_count() {
        let serial = run_at(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(serial, run_at(threads), "threads={threads}");
        }
    }

    #[test]
    fn results_in_trial_order() {
        let out = par_map(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_trial() {
        assert!(par_map(8, 0, |i| i).is_empty());
        assert_eq!(par_map(8, 1, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_trials() {
        let out = par_trials(64, 3, |i| i as u64, |_, rng| rng.gen::<u64>());
        assert_eq!(out, run_seeds(&[0, 1, 2]));
    }

    fn run_seeds(seeds: &[u64]) -> Vec<u64> {
        seeds.iter().map(|&s| SmallRng::seed_from_u64(s).gen::<u64>()).collect()
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }
}
