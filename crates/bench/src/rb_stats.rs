//! The §II-B randomized-benchmarking harness (extension), shared
//! between the `rb` binary and the tier-2 regression suite.
//!
//! The paper's background section describes RB as the standard
//! integrated benchmark, quoting ~99.5% single-qubit fidelity for its
//! machine. This module runs single-qubit RB at three rotation-noise
//! levels — one tuned to land near the paper's quoted fidelity — and
//! reports the fitted error per Clifford. The noise levels run on
//! [`crate::par_map`] with per-level seed streams: bit-identical at any
//! thread count.

use crate::{par_map, split_seed};
use itqc_trap::rb::{single_qubit_rb, RbConfig, RbResult};
use itqc_trap::{TrapConfig, VirtualTrap};

/// The swept one-qubit rotation-noise levels (radians); the first lands
/// near the paper's quoted ~99.5% single-qubit fidelity.
pub const RB_NOISE_LEVELS: [f64; 3] = [0.02, 0.10, 0.20];

/// The RB sequence lengths.
pub const RB_LENGTHS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// One noise level's RB outcome.
#[derive(Clone, Debug)]
pub struct RbRow {
    /// The rotation-noise level (radians).
    pub sigma: f64,
    /// The fitted RB result (survival curve, decay, error per Clifford).
    pub result: RbResult,
}

/// Runs single-qubit RB at every [`RB_NOISE_LEVELS`] entry with
/// `sequences` random sequences per length and `shots` shots per
/// sequence. Each level builds its own trap and sequence stream from
/// `seed` and its index, so the summary is identical at any thread
/// count.
pub fn rb_summary(seed: u64, sequences: usize, shots: usize, threads: usize) -> Vec<RbRow> {
    par_map(threads, RB_NOISE_LEVELS.len(), |i| {
        let sigma = RB_NOISE_LEVELS[i];
        let mut cfg = TrapConfig::ideal(2, split_seed(seed, 2 * i));
        cfg.one_qubit_jitter_std = sigma;
        let mut trap = VirtualTrap::new(cfg);
        let rb_config = RbConfig {
            qubit: 0,
            lengths: RB_LENGTHS.to_vec(),
            sequences_per_length: sequences.max(4),
            shots,
            seed: split_seed(seed, 2 * i + 1),
        };
        RbRow { sigma, result: single_qubit_rb(&mut trap, &rb_config) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_is_thread_invariant() {
        let a = rb_summary(9, 4, 100, 1);
        let b = rb_summary(9, 4, 100, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result.decay_p.to_bits(), y.result.decay_p.to_bits());
        }
    }

    #[test]
    fn error_grows_with_noise() {
        let rows = rb_summary(9, 6, 200, 0);
        assert!(
            rows[0].result.error_per_clifford < rows[2].result.error_per_clifford,
            "coherent angle jitter must grow the RB error: {rows:?}"
        );
    }
}
