//! Minimal CLI-argument parsing for the harness binaries.

/// Common harness options: `--trials=N  --seed=S  --csv  --fast`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Args {
    /// Monte-Carlo trials per configuration.
    pub trials: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Emit CSV after the human-readable tables.
    pub csv: bool,
    /// Shrink workloads for smoke testing.
    pub fast: bool,
}

impl Args {
    /// Parses `std::env::args`, with the given default trial count.
    ///
    /// Unknown arguments are ignored (forward compatibility); malformed
    /// values fall back to the defaults.
    pub fn parse(default_trials: usize) -> Self {
        let mut out = Args { trials: default_trials, seed: 20220402, csv: false, fast: false };
        for arg in std::env::args().skip(1) {
            if let Some(v) = arg.strip_prefix("--trials=") {
                if let Ok(n) = v.parse() {
                    out.trials = n;
                }
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                if let Ok(s) = v.parse() {
                    out.seed = s;
                }
            } else if arg == "--csv" {
                out.csv = true;
            } else if arg == "--fast" {
                out.fast = true;
            }
        }
        if out.fast {
            out.trials = out.trials.div_ceil(10).max(2);
        }
        out
    }

    /// A deterministic per-configuration seed derived from the master
    /// seed, so adding configurations does not reshuffle earlier ones.
    pub fn seed_for(&self, tag: &str) -> u64 {
        // FNV-1a over the tag, mixed with the master seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_config_seeds_differ() {
        let a = Args { trials: 10, seed: 1, csv: false, fast: false };
        assert_ne!(a.seed_for("fig8/n=8"), a.seed_for("fig8/n=16"));
        assert_eq!(a.seed_for("x"), a.seed_for("x"));
    }
}
