//! Minimal CLI-argument parsing for the harness binaries.

use itqc_backend::BackendChoice;
use itqc_core::DecoderPolicy;

/// Where `--metrics[=PATH]` sends the end-of-run metrics document
/// (never stdout — every byte-identity gate diffs stdout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricsSink {
    /// Print the JSON document to stderr (bare `--metrics`).
    Stderr,
    /// Write the JSON document to a sidecar file (`--metrics=PATH`).
    File(String),
}

/// Common harness options:
/// `--trials=N  --seed=S  --threads=N|auto  --decoder=P  --backend=B  --csv  --fast  --cost-report  --metrics[=PATH]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Args {
    /// Monte-Carlo trials per configuration.
    pub trials: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel trial engine; `0` (or
    /// `--threads=auto`) = all available cores via
    /// `std::thread::available_parallelism`. Results are identical at
    /// any thread count, so this only changes wall-clock — note that on
    /// a 1-vCPU container `auto` resolves to a single worker and the
    /// parallel engine degrades gracefully to the sequential path.
    pub threads: usize,
    /// Multi-fault decoder policy override (`greedy|ranked|set-cover`);
    /// `None` keeps each binary's paper default (ranked).
    pub decoder: Option<DecoderPolicy>,
    /// Simulation backend for the scaling binaries
    /// (`dense|analytic|auto`; default `auto` — analytic for
    /// commuting-XX circuits, dense fallback otherwise).
    pub backend: BackendChoice,
    /// Emit CSV after the human-readable tables.
    pub csv: bool,
    /// Shrink workloads for smoke testing.
    pub fast: bool,
    /// Print the static cost-model prediction next to the measured
    /// wall-clock on stderr after the run (stdout stays byte-identical,
    /// so the determinism diffs are unaffected).
    pub cost_report: bool,
    /// Emit the end-of-run metrics document (`--metrics` → stderr,
    /// `--metrics=PATH` → sidecar file); also enables the `itqc_obs`
    /// event layer for the run.
    pub metrics: Option<MetricsSink>,
}

impl Args {
    /// Parses `std::env::args`, with the given default trial count.
    ///
    /// Unknown arguments are ignored (forward compatibility); malformed
    /// values fall back to the defaults.
    pub fn parse(default_trials: usize) -> Self {
        Self::parse_from(default_trials, std::env::args().skip(1))
    }

    /// [`Self::parse`] over an explicit argument list (testable core).
    pub fn parse_from(default_trials: usize, args: impl Iterator<Item = String>) -> Self {
        let mut out = Args {
            trials: default_trials,
            seed: 20220402,
            threads: 0,
            decoder: None,
            backend: BackendChoice::Auto,
            csv: false,
            fast: false,
            cost_report: false,
            metrics: None,
        };
        for arg in args {
            if let Some(v) = arg.strip_prefix("--trials=") {
                if let Ok(n) = v.parse() {
                    out.trials = n;
                }
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                if let Ok(s) = v.parse() {
                    out.seed = s;
                }
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                if v == "auto" {
                    out.threads = 0;
                } else if let Ok(t) = v.parse() {
                    out.threads = t;
                }
            } else if let Some(v) = arg.strip_prefix("--decoder=") {
                if let Ok(p) = v.parse() {
                    out.decoder = Some(p);
                }
            } else if let Some(v) = arg.strip_prefix("--backend=") {
                if let Ok(b) = v.parse() {
                    out.backend = b;
                }
            } else if arg == "--csv" {
                out.csv = true;
            } else if arg == "--fast" {
                out.fast = true;
            } else if arg == "--cost-report" {
                out.cost_report = true;
            } else if arg == "--metrics" {
                out.metrics = Some(MetricsSink::Stderr);
            } else if let Some(path) = arg.strip_prefix("--metrics=") {
                out.metrics = Some(MetricsSink::File(path.to_string()));
            }
        }
        if out.fast {
            out.trials = out.trials.div_ceil(10).max(2);
        }
        // Zero trials would make every Monte-Carlo mean 0/0 (NaN
        // tables); one trial is the smallest meaningful budget.
        out.trials = out.trials.max(1);
        out
    }

    /// The worker thread count with `0` resolved to the machine's
    /// available parallelism.
    pub fn threads(&self) -> usize {
        crate::par_trials::resolve_threads(self.threads)
    }

    /// The decoder policy, defaulting to the paper-reproduction default
    /// (the likelihood-ranked aliasing decoder) when `--decoder=` was
    /// not given.
    pub fn decoder(&self) -> DecoderPolicy {
        self.decoder.unwrap_or(DecoderPolicy::Ranked)
    }

    /// A deterministic per-configuration seed derived from the master
    /// seed, so adding configurations does not reshuffle earlier ones.
    pub fn seed_for(&self, tag: &str) -> u64 {
        // FNV-1a over the tag, mixed with the master seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args() -> Args {
        Args {
            trials: 10,
            seed: 1,
            threads: 0,
            decoder: None,
            backend: BackendChoice::Auto,
            csv: false,
            fast: false,
            cost_report: false,
            metrics: None,
        }
    }

    #[test]
    fn cost_report_flag_parses() {
        let argv = ["--cost-report".to_string()].into_iter();
        assert!(Args::parse_from(10, argv).cost_report);
        assert!(!args().cost_report);
    }

    #[test]
    fn metrics_flag_parses_both_sinks() {
        let argv = |s: &str| [s.to_string()].into_iter();
        assert_eq!(args().metrics, None);
        assert_eq!(Args::parse_from(10, argv("--metrics")).metrics, Some(MetricsSink::Stderr));
        assert_eq!(
            Args::parse_from(10, argv("--metrics=/tmp/m.json")).metrics,
            Some(MetricsSink::File("/tmp/m.json".to_string()))
        );
    }

    #[test]
    fn backend_choice_parses() {
        assert_eq!("analytic".parse::<BackendChoice>(), Ok(BackendChoice::Analytic));
        assert_eq!(args().backend, BackendChoice::Auto);
    }

    #[test]
    fn per_config_seeds_differ() {
        let a = args();
        assert_ne!(a.seed_for("fig8/n=8"), a.seed_for("fig8/n=16"));
        assert_eq!(a.seed_for("x"), a.seed_for("x"));
    }

    #[test]
    fn threads_zero_resolves_to_at_least_one() {
        let a = args();
        assert!(a.threads() >= 1);
        let b = Args { threads: 8, ..a };
        assert_eq!(b.threads(), 8);
    }

    #[test]
    fn threads_auto_parses_like_zero() {
        let argv = |s: &str| [s.to_string()].into_iter();
        let auto = Args::parse_from(10, argv("--threads=auto"));
        assert_eq!(auto.threads, 0, "`auto` defers to available_parallelism");
        assert!(auto.threads() >= 1);
        let fixed = Args::parse_from(10, argv("--threads=3"));
        assert_eq!(fixed.threads, 3);
        let junk = Args::parse_from(10, argv("--threads=lots"));
        assert_eq!(junk.threads, 0, "malformed values keep the default");
    }

    #[test]
    fn decoder_defaults_to_ranked() {
        assert_eq!(args().decoder(), DecoderPolicy::Ranked);
        let b = Args { decoder: Some(DecoderPolicy::Greedy), ..args() };
        assert_eq!(b.decoder(), DecoderPolicy::Greedy);
        assert_eq!("set-cover".parse::<DecoderPolicy>(), Ok(DecoderPolicy::SetCoverFallback));
    }
}
