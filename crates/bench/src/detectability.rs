//! Fig. 8 — test contrast and detectability at scale (the paper's
//! 8/16/32-qubit sweep), as reusable estimators on [`crate::par_trials`].
//!
//! For each machine size and test depth, one coupling receives a swept
//! under-rotation `u` while every other coupling carries a random ±10 %
//! ambient calibration error. Per sweep point the estimators report the
//! mean worst-qubit score of first-round tests containing the planted
//! coupling vs those not containing it (the paper's contrast curves),
//! and the probability that the full single-fault protocol identifies
//! the planted coupling — whose 95 % level defines the figure's
//! "minimum detectable under-rotation".
//!
//! Every shot is a genuine output string drawn from the exact circuit
//! distribution through the pluggable simulation-backend subsystem
//! ([`itqc_backend`]): the analytic engine factorizes each test over
//! its coupling-graph components (`2^c` work for a `c`-qubit component,
//! never `2^N`), which is what makes the 32-qubit sweep a minutes-scale
//! computation. The pass/fail threshold is calibrated on the *same*
//! string statistic ([`crate::ambient::calibrate_threshold_strings_par`]),
//! since the minimum over correlated per-qubit counts sits measurably
//! below a binomial draw of the exact worst marginal.
//!
//! One trial re-uses a single ambient draw across the whole `u`-sweep
//! (common random numbers — the curve within a trial varies only the
//! planted fault) and a private seed stream per `(trial, u)` for shots,
//! so results are bit-identical at any `--threads` value.

use crate::ambient::{
    ambient_executor_uniform_with, calibrate_threshold_strings_par, random_couplings,
};
use crate::{par_trials, split_seed, StringSampled};
use itqc_backend::BackendChoice;
use itqc_core::testplan::ScoreMode;
use itqc_core::{first_round_classes, Diagnosis, LabelSpace, SingleFaultProtocol, TestSpec};
use std::collections::BTreeSet;

/// The ambient calibration-error bound of the scaling studies (the
/// paper's "10% random amplitude errors").
pub const FIG8_AMBIENT: f64 = 0.10;

/// The ambient bound actually applied at machine size `n`: the paper's
/// [`FIG8_AMBIENT`] up to 32 qubits, scaled by `1/√(n/2 − 1)`-normalised
/// degree above [`crate::ambient::COMMON_MODE_MIN_QUBITS`]. Beyond the
/// paper's sizes the ambient model is *common-mode* (one master-
/// amplitude drift shared by all couplings — see
/// [`crate::ambient::ambient_executor_uniform`]): per-coupling scatter
/// random-walks across a qubit's `d = n/2 − 1` partners (phase error
/// `∝ σ·√d`), while a common-mode drift compounds linearly (`∝ u·d`),
/// so an equal-bound common-mode model at degree 31–63 saturates every
/// healthy score and the sweep measures nothing. Scaling the bound to
/// `FIG8_AMBIENT·√(d₃₂)/d` matches the per-qubit phase-noise magnitude
/// of the paper's 32-qubit operating point, keeping the knees
/// comparable across the whole 8→128 sweep.
pub fn fig8_ambient_bound(n_qubits: usize) -> f64 {
    if n_qubits <= crate::ambient::COMMON_MODE_MIN_QUBITS {
        return FIG8_AMBIENT;
    }
    let degree = (n_qubits / 2 - 1) as f64;
    let paper_degree = 15.0f64; // 32-qubit panel: 16-qubit components
    FIG8_AMBIENT * paper_degree.sqrt() / degree
}

/// Shots per test circuit (the paper's hardware budget).
pub const FIG8_SHOTS: usize = 300;

/// Pass/fail statistic of the scaling studies.
pub const FIG8_SCORE: ScoreMode = ScoreMode::WorstQubit;

/// Healthy-score quantile the threshold is calibrated at. Two forces
/// pull on it: every one of the up-to-`3n − 1` healthy tests of a
/// diagnosis must pass (pushing the quantile down), while the
/// verification point test on the accused coupling — the *highest*
/// scoring faulty test, with no ambient co-factors — must still fail
/// (pushing the threshold, hence the quantile, up). 0.001 keeps the
/// all-healthy-pass probability ≥ 98.5 % even at the 32-qubit
/// battery's ~15 tests; the verification side no longer constrains it,
/// because the protocol runs with contrast verification
/// ([`SingleFaultProtocol::with_contrast_verification`]): the
/// verification cut is re-placed per run at the fault-vs-healthy
/// midpoint of the fitted magnitude, which restored the ~1.7σ of
/// noise margin that used to park the 32-qubit knees one sweep step
/// above the paper's (see EXPERIMENTS.md).
pub const FIG8_QUANTILE: f64 = 0.001;

/// The swept under-rotations: 0 %, 5 %, …, 50 %.
pub fn fig8_sweep() -> Vec<f64> {
    (0..=10).map(|k| 0.05 * k as f64).collect()
}

/// One sweep point of a detectability curve.
#[derive(Clone, Copy, Debug)]
pub struct DetectabilityPoint {
    /// Planted under-rotation.
    pub under_rotation: f64,
    /// Mean worst-qubit score of first-round tests containing the
    /// planted coupling (exact, no shot noise — the paper's solid
    /// contrast curve).
    pub faulty_mean: f64,
    /// Mean score of tests not containing it (the dashed ambient
    /// baseline).
    pub healthy_mean: f64,
    /// Probability the single-fault protocol identifies the planted
    /// coupling from 300-shot string statistics.
    pub p_identify: f64,
}

/// A full Fig. 8 curve for one (machine size, test depth) panel.
#[derive(Clone, Debug)]
pub struct DetectabilityCurve {
    /// Register size.
    pub n_qubits: usize,
    /// MS gates per coupling.
    pub reps: usize,
    /// The calibrated pass/fail threshold used by every trial.
    pub threshold: f64,
    /// One entry per sweep under-rotation, ascending.
    pub points: Vec<DetectabilityPoint>,
}

impl DetectabilityCurve {
    /// The smallest swept under-rotation whose identification
    /// probability reaches `level`, or `None` if the sweep never does.
    pub fn min_u_at(&self, level: f64) -> Option<f64> {
        self.points.iter().find(|p| p.p_identify >= level).map(|p| p.under_rotation)
    }
}

/// Calibrates the Fig. 8 pass/fail threshold for one panel on the
/// string statistic (thread-invariant; `trials` ambient machines).
pub fn fig8_threshold(
    n_qubits: usize,
    reps: usize,
    trials: usize,
    threads: usize,
    backend: BackendChoice,
    seed: u64,
) -> f64 {
    calibrate_threshold_strings_par(
        threads,
        n_qubits,
        reps,
        fig8_ambient_bound(n_qubits),
        FIG8_SCORE,
        FIG8_SHOTS,
        FIG8_QUANTILE,
        trials,
        backend,
        seed,
    )
}

/// Measures one Fig. 8 panel: `trials` planted-fault machines per sweep
/// point, on up to `threads` workers, every protocol shot drawn as a
/// genuine output string through `backend`. Bit-identical at any thread
/// count.
pub fn fig8_curve(
    n_qubits: usize,
    reps: usize,
    threshold: f64,
    trials: usize,
    threads: usize,
    backend: BackendChoice,
    seed: u64,
) -> DetectabilityCurve {
    let sweep = fig8_sweep();
    // The class battery is trial- and u-independent: enumerate each
    // class's couplings and build its spec once per panel, not once per
    // (trial, u) (the specs consume no RNG, so hoisting cannot move the
    // seed streams).
    let space = LabelSpace::new(n_qubits);
    let none = BTreeSet::new();
    let battery: Vec<(Vec<itqc_circuit::Coupling>, TestSpec)> = first_round_classes(&space)
        .into_iter()
        .filter_map(|class| {
            let couplings = class.couplings(&space, &none);
            if couplings.is_empty() {
                return None;
            }
            let spec = TestSpec::for_couplings("t", &couplings, reps).with_score(FIG8_SCORE);
            Some((couplings, spec))
        })
        .collect();
    let per_trial = par_trials(
        threads,
        trials,
        |t| split_seed(seed, t),
        |_, rng| {
            use rand::Rng;
            let target = random_couplings(n_qubits, 1, rng)[0];
            // One ambient draw per trial, shared by the whole sweep; the
            // planted magnitude overlays it below (common random numbers).
            let ambient = ambient_executor_uniform_with(
                n_qubits,
                fig8_ambient_bound(n_qubits),
                &[],
                backend,
                rng,
            );
            let shot_master: u64 = rng.gen();
            sweep
                .iter()
                .enumerate()
                .map(|(ui, &u)| {
                    let exec = ambient.clone().with_faults([(target, u)]);
                    let (mut f_sum, mut f_n, mut h_sum, mut h_n) = (0.0, 0usize, 0.0, 0usize);
                    for (couplings, spec) in &battery {
                        let s = exec.exact_score(spec);
                        if couplings.contains(&target) {
                            f_sum += s;
                            f_n += 1;
                        } else {
                            h_sum += s;
                            h_n += 1;
                        }
                    }
                    let mut sampler = StringSampled::new(exec, split_seed(shot_master, ui));
                    let protocol = SingleFaultProtocol::new(n_qubits, reps, threshold, FIG8_SHOTS)
                        .with_score(FIG8_SCORE)
                        .with_contrast_verification();
                    let report = protocol.diagnose(&mut sampler);
                    let identified = report.diagnosis == Diagnosis::Fault(target);
                    (f_sum, f_n, h_sum, h_n, identified)
                })
                .collect::<Vec<_>>()
        },
    );
    let points = sweep
        .iter()
        .enumerate()
        .map(|(ui, &u)| {
            let (mut f_sum, mut f_n, mut h_sum, mut h_n, mut hits) =
                (0.0f64, 0usize, 0.0f64, 0usize, 0usize);
            for trial in &per_trial {
                let (fs, fc, hs, hc, id) = trial[ui];
                f_sum += fs;
                f_n += fc;
                h_sum += hs;
                h_n += hc;
                hits += id as usize;
            }
            DetectabilityPoint {
                under_rotation: u,
                faulty_mean: f_sum / f_n.max(1) as f64,
                healthy_mean: h_sum / h_n.max(1) as f64,
                p_identify: hits as f64 / trials.max(1) as f64,
            }
        })
        .collect();
    DetectabilityCurve { n_qubits, reps, threshold, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_thread_invariant() {
        let t = fig8_threshold(8, 4, 8, 1, BackendChoice::Analytic, 31);
        let a = fig8_curve(8, 4, t, 6, 1, BackendChoice::Analytic, 77);
        let b = fig8_curve(8, 4, t, 6, 8, BackendChoice::Analytic, 77);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.p_identify, y.p_identify);
            assert_eq!(x.faulty_mean.to_bits(), y.faulty_mean.to_bits());
            assert_eq!(x.healthy_mean.to_bits(), y.healthy_mean.to_bits());
        }
    }

    #[test]
    fn big_faults_are_found_and_tiny_ones_are_not() {
        let t = fig8_threshold(8, 4, 20, 0, BackendChoice::Auto, 5);
        let curve = fig8_curve(8, 4, t, 20, 0, BackendChoice::Auto, 6);
        let p0 = curve.points.first().unwrap();
        let p_big = &curve.points[8]; // u = 40%
        assert!(p0.p_identify <= 0.1, "u=0 identified {}", p0.p_identify);
        assert!(p_big.p_identify >= 0.8, "u=40% identified only {}", p_big.p_identify);
        assert!(p_big.faulty_mean < p0.faulty_mean - 0.1, "contrast must open with u");
        let healthy_drift = (p_big.healthy_mean - p0.healthy_mean).abs();
        assert!(healthy_drift < 0.05, "healthy baseline must stay flat ({healthy_drift})");
        if let Some(min_u) = curve.min_u_at(0.95) {
            assert!(min_u > 0.05, "a noise-floor fault cannot be 95%-identifiable");
        }
    }
}
