//! `--metrics[=PATH]` plumbing for the harness binaries.
//!
//! [`init`] flips the `itqc_obs` event layer on when the run asked for
//! metrics (or for an observed `--cost-report`); [`emit_if_requested`]
//! renders the global registry's versioned JSON document at the end of
//! the run. The document goes to stderr or a sidecar file, never
//! stdout: every determinism gate in CI diffs stdout, and `--metrics`
//! must leave it byte-identical.

use crate::args::{Args, MetricsSink};
use std::time::Duration;

/// Enables the observability layer if this run wants it (either sink
/// form of `--metrics`, or `--cost-report`, whose per-phase table is
/// driven by observed counters). Call once at binary startup, before
/// any work worth counting.
pub fn init(args: &Args) {
    if args.metrics.is_some() || args.cost_report {
        itqc_obs::set_enabled(true);
    }
}

/// Flushes this thread's event shard and emits the global registry's
/// document for `binary` to the requested sink. No-op without
/// `--metrics`.
pub fn emit_if_requested(binary: &str, args: &Args, wall: Duration) {
    if let Some(sink) = &args.metrics {
        itqc_obs::event::flush();
        let doc = itqc_obs::global().document(binary, wall.as_secs_f64());
        write_doc(sink, &doc);
    }
}

/// Writes an already-rendered document to a sink (the fleet binaries
/// assemble merged documents themselves).
pub fn write_doc(sink: &MetricsSink, doc: &str) {
    match sink {
        MetricsSink::Stderr => eprint!("{doc}"),
        MetricsSink::File(path) => {
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("metrics: cannot write {path}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_sink_writes_the_document() {
        let path = std::env::temp_dir().join("itqc_obs_metrics_sink_test.json");
        let sink = MetricsSink::File(path.to_string_lossy().into_owned());
        write_doc(&sink, "{\"ok\":1}\n");
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "{\"ok\":1}\n");
        let _ = std::fs::remove_file(&path);
    }
}
