//! The Fig. 2 duty-cycle simulation: 24 hours of an 11-qubit machine
//! under two maintenance policies.
//!
//! The machine-day scheduling model itself lives in
//! [`itqc_fleet::machine_day`] — the fleet service (`fleetd`) schedules
//! every trap through the same state machine that renders this figure —
//! and is re-exported here so the `fig2` binary, the tier-2 statistical
//! regression suite, and historical import paths keep working
//! unchanged. Only the trial-parallel averaging helper is local.

pub use itqc_fleet::machine_day::{
    fig2_diagnosis_config, fig2_drift, jobs_share_excluding_idle, periodic_policy,
    test_driven_policy, FIG2_HOURS, FIG2_JOB_SECONDS, FIG2_QUBITS,
};

use crate::par_map;
use itqc_trap::{Activity, VirtualTrap};

/// Mean seconds per activity (in `Activity::ALL` order) over `trials`
/// independent simulated days, run on the parallel trial engine. Each
/// trial owns its seed, so the result is identical at any thread count.
pub fn mean_duty(
    threads: usize,
    trials: usize,
    seed_of: impl Fn(usize) -> u64 + Sync,
    run: impl Fn(u64) -> VirtualTrap + Sync,
) -> [f64; Activity::ALL.len()] {
    let traps = par_map(threads, trials, |t| run(seed_of(t)));
    let mut mean = [0.0f64; Activity::ALL.len()];
    for trap in &traps {
        let d = trap.duty();
        for (acc, &a) in mean.iter_mut().zip(Activity::ALL.iter()) {
            *acc += d.seconds(a) / traps.len() as f64;
        }
    }
    mean
}
