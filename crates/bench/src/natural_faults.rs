//! The Fig. 7 naturally-occurring-miscalibration study, shared between
//! the `fig7` binary and the tier-2 statistical regression suite.
//!
//! Replays the paper's observed machine state after 15 minutes of
//! idling: most couplings drift within the ±6% calibration band while
//! {3,4}, {2,5} and {5,7} develop large under-rotations; the sequential
//! multi-fault pipeline (with the evidence-fusion ranked decoder) must
//! recover all three — including the two bit-complementary pairs {3,4}
//! and {2,5}, invisible to the first round (footnote 9's "no positive
//! test results" case).

use crate::{par_trials, split_seed};
use itqc_circuit::Coupling;
use itqc_core::testplan::ScoreMode;
use itqc_core::{diagnose_all, DecoderPolicy, MultiFaultConfig, MultiFaultReport};
use itqc_trap::{TrapConfig, VirtualTrap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The paper's machine size.
pub const FIG7_QUBITS: usize = 8;

/// The paper's observed post-drift state (Fig. 7C): three outliers, the
/// rest inside the ±6% band.
pub const FIG7_OUTLIERS: [(usize, usize, f64); 3] = [(3, 4, 0.25), (2, 5, 0.16), (5, 7, 0.15)];

/// Half-width of the ambient calibration band the healthy couplings
/// drift within.
pub const FIG7_AMBIENT_BAND: f64 = 0.06;

/// The expected fault set, sorted.
pub fn fig7_expected() -> Vec<Coupling> {
    let mut out: Vec<Coupling> =
        FIG7_OUTLIERS.iter().map(|&(a, b, _)| Coupling::new(a, b)).collect();
    out.sort();
    out
}

/// Builds the drifted machine: every coupling drawn uniformly from the
/// ±6% band, then the three outliers overwritten.
pub fn fig7_trap(trap_seed: u64, ambient_seed: u64) -> VirtualTrap {
    let mut trap = VirtualTrap::new(TrapConfig::ideal(FIG7_QUBITS, trap_seed));
    let mut rng = SmallRng::seed_from_u64(ambient_seed);
    for c in trap.couplings() {
        trap.inject_fault(c, rng.gen_range(-FIG7_AMBIENT_BAND..FIG7_AMBIENT_BAND));
    }
    for (a, b, u) in FIG7_OUTLIERS {
        trap.inject_fault(Coupling::new(a, b), u);
    }
    trap
}

/// The Fig. 7 diagnosis configuration: 8-MS amplification (the ~15%
/// faults need the deep rung), 300 shots, the evidence-fusion ranked
/// decoder.
pub fn fig7_config() -> MultiFaultConfig {
    MultiFaultConfig {
        reps_ladder: vec![8],
        threshold: 0.5,
        canary_threshold: 0.12,
        shots: 300,
        canary_shots: 300,
        max_faults: 5,
        decoder: DecoderPolicy::Ranked,
        ranked_sigma: itqc_core::threshold::observation_sigma(300, 0.02, 8),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::ExactTarget,
        max_threshold_retunes: 4,
        fusion_rounds: 2,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    }
}

/// Runs the sequential diagnosis on a drifted machine.
pub fn fig7_diagnose(trap: &mut VirtualTrap) -> MultiFaultReport {
    diagnose_all(trap, FIG7_QUBITS, &fig7_config())
}

/// Monte-Carlo probability that the pipeline recovers *exactly* the
/// three planted outliers (no ambient coupling falsely accused, none of
/// the three missed) over independently drawn ambient drifts and shot
/// streams. Runs on [`crate::par_trials`]: bit-identical at any thread
/// count.
pub fn fig7_recovery_rate(trials: usize, threads: usize, seed: u64) -> f64 {
    let expected: BTreeSet<Coupling> = fig7_expected().into_iter().collect();
    let outcomes = par_trials(
        threads,
        trials,
        |t| split_seed(seed, t),
        |_, rng| {
            let trap_seed = rng.gen();
            let ambient_seed = rng.gen();
            let mut trap = fig7_trap(trap_seed, ambient_seed);
            let report = fig7_diagnose(&mut trap);
            let found: BTreeSet<Coupling> = report.couplings().into_iter().collect();
            found == expected
        },
    );
    outcomes.iter().filter(|&&ok| ok).count() as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_rate_is_thread_invariant() {
        let a = fig7_recovery_rate(4, 1, 5);
        let b = fig7_recovery_rate(4, 8, 5);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn two_outliers_are_bit_complementary() {
        // {3,4} = 011/100 and {2,5} = 010/101 share no index bits: the
        // first round cannot see them (the footnote-9 setting the
        // adaptive rounds must handle).
        let n_bits = 3u32;
        for (a, b) in [(3usize, 4usize), (2, 5)] {
            assert!(
                (0..n_bits).all(|i| (a >> i) & 1 != (b >> i) & 1),
                "{{{a},{b}}} must be bit-complementary"
            );
        }
    }
}
