//! The adversarial fault-coverage scorecard (`fig_adv`): identification
//! probability vs *configuration class* — uniform draws (the Table II
//! baseline), even-degree cycle unions (invisible to the fixed
//! worst-qubit canary), and tied disjoint perfect-fit covers (the
//! evidence-fusion decoder's honest abstention) — with the
//! countermeasures (rotating canary subsets + disputed-member
//! interrogation) off and on.
//!
//! Same discipline as the Table II estimators: every trial plants and
//! diagnoses its own scenario from a private seeded stream on
//! [`crate::par_trials`], so every number is bit-identical at any
//! `--threads` value. The oracle executor (exact scores, one shot)
//! isolates the *structural* blind spots from shot noise: a 0 % cell is
//! a property of the pipeline, not of a sample.

use crate::{par_trials, split_seed};
use itqc_core::testplan::ScoreMode;
use itqc_core::{diagnose_all, DecoderPolicy, ExactExecutor, MultiFaultConfig};
use itqc_faults::adversarial::{sample_scenario, ConfigClass};

/// Planted under-rotation of every adversarial fault — the Table II
/// magnitude, at which a faulty degree-2 qubit still agrees with the
/// worst-qubit canary target with probability (1 + cos²(2u·π))/2 ≈ 0.55.
pub const ADV_FAULT_U: f64 = 0.30;

/// Rotations per passed canary under countermeasures: a random subset
/// breaks a triangle's parity with probability 3/4, so four rotations
/// leave ~0.4 % residual invisibility per round.
pub const ADV_CANARY_ROTATIONS: usize = 4;

/// The adversarial pipeline configuration: the Table II oracle setup,
/// with the countermeasure pair — [`ADV_CANARY_ROTATIONS`] rotating
/// canary subsets and [`DecoderPolicy::Interrogate`] — switched
/// together. `countermeasures = false` is the paper-faithful pipeline
/// ([`DecoderPolicy::Ranked`], fixed canary only).
pub fn adversarial_config(
    max_faults: usize,
    countermeasures: bool,
    canary_seed: u64,
) -> MultiFaultConfig {
    MultiFaultConfig {
        reps_ladder: vec![2, 4],
        threshold: 0.5,
        canary_threshold: 0.5,
        shots: 1, // oracle executor: exact scores, no shot noise
        canary_shots: 1,
        max_faults,
        decoder: if countermeasures { DecoderPolicy::Interrogate } else { DecoderPolicy::Ranked },
        ranked_sigma: itqc_core::threshold::observation_sigma(0, 0.0, 4),
        score: ScoreMode::ExactTarget,
        canary_score: ScoreMode::WorstQubit,
        max_threshold_retunes: 4,
        fusion_rounds: 2,
        fault_magnitude: 0.10,
        canary_rotations: if countermeasures { ADV_CANARY_ROTATIONS } else { 0 },
        canary_seed,
    }
}

/// One scorecard cell: a configuration class at one machine size under
/// one countermeasure setting.
#[derive(Clone, Copy, Debug)]
pub struct AdversarialScore {
    /// The configuration class swept.
    pub class: ConfigClass,
    /// Probability the diagnosed set equals the planted set exactly.
    pub identification: f64,
    /// Mean planted fault count per trial.
    pub mean_faults: f64,
    /// Total healthy couplings accused across all trials (must be 0:
    /// every accusation is magnitude-verified, blind spots may only
    /// cause *misses*).
    pub false_accusations: usize,
    /// Trial count behind the estimates.
    pub trials: usize,
}

/// Measures one scorecard cell: `trials` seeded scenario draws of
/// `class`, each planted on an oracle executor and run through the full
/// Fig. 5 loop under [`adversarial_config`]. Thread-invariant.
pub fn adversarial_score(
    n_qubits: usize,
    class: ConfigClass,
    trials: usize,
    threads: usize,
    countermeasures: bool,
    seed: u64,
) -> AdversarialScore {
    use rand::Rng;
    let outcomes = par_trials(
        threads,
        trials,
        |t| split_seed(seed, t),
        |_, rng| {
            let scenario = sample_scenario(class, n_qubits, rng);
            let truth = scenario.faults.clone();
            let cfg = adversarial_config(truth.len() + 2, countermeasures, rng.gen());
            let mut exec =
                ExactExecutor::new(n_qubits).with_faults(truth.iter().map(|&c| (c, ADV_FAULT_U)));
            let got = diagnose_all(&mut exec, n_qubits, &cfg).couplings();
            let false_acc = got.iter().filter(|c| !truth.contains(c)).count();
            (got == truth, truth.len(), false_acc)
        },
    );
    let hits = outcomes.iter().filter(|&&(ok, _, _)| ok).count();
    let planted: usize = outcomes.iter().map(|&(_, k, _)| k).sum();
    let false_accusations = outcomes.iter().map(|&(_, _, f)| f).sum();
    AdversarialScore {
        class,
        identification: hits as f64 / trials.max(1) as f64,
        mean_faults: planted as f64 / trials.max(1) as f64,
        false_accusations,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_thread_invariant() {
        for class in ConfigClass::ALL {
            let serial = adversarial_score(8, class, 16, 1, true, 7);
            let parallel = adversarial_score(8, class, 16, 8, true, 7);
            assert_eq!(serial.identification.to_bits(), parallel.identification.to_bits());
            assert_eq!(serial.mean_faults.to_bits(), parallel.mean_faults.to_bits());
            assert_eq!(serial.false_accusations, parallel.false_accusations);
        }
    }

    #[test]
    fn even_degree_baseline_is_exactly_zero() {
        // Not "low": structurally zero. Every even-degree configuration
        // passes the fixed canary at any magnitude, so the paper loop
        // never opens a diagnosis round.
        let s = adversarial_score(8, ConfigClass::EvenDegree, 24, 0, false, 11);
        assert_eq!(s.identification, 0.0);
        assert_eq!(s.false_accusations, 0);
    }

    #[test]
    fn countermeasures_lift_even_degree_to_near_certainty() {
        let s = adversarial_score(8, ConfigClass::EvenDegree, 24, 0, true, 13);
        assert!(s.identification >= 0.75, "got {}", s.identification);
        assert_eq!(s.false_accusations, 0);
    }
}
