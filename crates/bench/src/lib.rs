//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/{fig*,table*}.rs` binary reproduces one evaluation
//! artefact and prints the same rows/series the paper reports. This
//! library holds the shared pieces: aligned table rendering, a
//! shot-sampling executor wrapper, ambient-calibration machinery, and tiny
//! CLI-argument parsing.
//!
//! Run everything with:
//!
//! ```text
//! for b in table1 fig2 fig3 fig6 fig7 fig8 fig9 fig10 fig11 table2; do
//!     cargo run --release -p itqc-bench --bin $b
//! done
//! ```
//!
//! Every binary accepts `--trials=N` (Monte-Carlo budget), `--seed=S`
//! and `--threads=N` (parallel trial workers; `0` = all cores, and the
//! output is bit-identical at any thread count — see [`par_trials`]);
//! defaults are sized to finish in tens of seconds to a few minutes in
//! release mode. `EXPERIMENTS.md` records paper-vs-measured values.

#![warn(missing_docs)]

pub mod adversarial;
pub mod ambient;
pub mod args;
pub mod cost_report;
pub mod coupling_census;
pub mod detectability;
pub mod duty_cycle;
pub mod echo;
pub mod fig9;
pub mod metrics;
pub mod natural_faults;
pub mod output;
pub mod par_trials;
pub mod protocol_stats;
pub mod rb_stats;
pub mod shot_exec;
pub mod single_output;
pub mod speedup;

pub use adversarial::{adversarial_score, AdversarialScore};
pub use ambient::ambient_executor;
pub use args::Args;
pub use detectability::{fig8_curve, fig8_threshold, DetectabilityCurve};
pub use fig9::{fig9_panel, Fig9Panel};
pub use output::Table;
pub use par_trials::{par_map, par_trials, split_seed};
pub use protocol_stats::{table2_identification_rate, table2_identification_rate_backed};
pub use shot_exec::{ShotSampled, StringSampled};
