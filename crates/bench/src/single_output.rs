//! The Fig. 6 single-output test battery with artificially introduced
//! errors, shared between the `fig6` binary and the tier-2 statistical
//! regression suite.
//!
//! On an 8-qubit machine, 47% and 22% under-rotations are planted on
//! couplings {0,4} and {0,7} (the paper's §VI experiment) over the
//! simulator's 10% random amplitude jitter. The full first-round battery
//! runs at 2-MS and 4-MS depth; the paper's fidelity thresholds 0.45 /
//! 0.25 separate faulty from healthy tests.
//!
//! Every (class, depth) cell runs on [`crate::par_trials`] with its own
//! seeded trap, so the battery is bit-identical at any `--threads`.

use crate::{par_map, split_seed};
use itqc_circuit::Coupling;
use itqc_core::{first_round_classes, LabelSpace, SubcubeClass, TestSpec};
use itqc_trap::{Activity, TrapConfig, VirtualTrap};
use std::collections::BTreeSet;

/// The paper's machine size.
pub const FIG6_QUBITS: usize = 8;

/// The planted under-rotations: 47% on {0,4}, 22% on {0,7}.
pub const FIG6_FAULTS: [(usize, usize, f64); 2] = [(0, 4, 0.47), (0, 7, 0.22)];

/// The paper's 2-MS pass/fail fidelity threshold (Fig. 6).
pub const FIG6_THRESH_2MS: f64 = 0.45;

/// The paper's 4-MS pass/fail fidelity threshold (Fig. 6).
pub const FIG6_THRESH_4MS: f64 = 0.25;

/// The simulator's ambient amplitude jitter: "10% random amplitude
/// errors" on all two-qubit gates, as a half-normal scale.
pub fn fig6_jitter() -> f64 {
    0.10 * (std::f64::consts::PI / 2.0).sqrt()
}

/// One measured battery cell.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// The subcube class under test.
    pub class: SubcubeClass,
    /// Couplings in the class test circuit.
    pub couplings: usize,
    /// Observed fidelity at 2-MS depth.
    pub fid2: f64,
    /// Observed fidelity at 4-MS depth.
    pub fid4: f64,
}

impl Fig6Row {
    /// Pass/fail verdicts under the paper's thresholds, as
    /// `(fail_2ms, fail_4ms)`.
    pub fn verdicts(&self) -> (bool, bool) {
        (self.fid2 < FIG6_THRESH_2MS, self.fid4 < FIG6_THRESH_4MS)
    }
}

/// Builds one faulted trap instance (both planted errors over the
/// ambient jitter) for a given seed.
pub fn fig6_trap(seed: u64, jitter: f64) -> VirtualTrap {
    let mut cfg = TrapConfig::ideal(FIG6_QUBITS, seed);
    cfg.amplitude_jitter_std = jitter;
    let mut trap = VirtualTrap::new(cfg);
    for (a, b, u) in FIG6_FAULTS {
        trap.inject_fault(Coupling::new(a, b), u);
    }
    trap
}

/// Runs the full first-round battery at 2-MS and 4-MS depth with
/// `shots` shots per test. Each (class, depth) cell samples on its own
/// trap seeded from `seed` and the cell index, so the returned rows are
/// identical at any thread count.
pub fn fig6_battery(seed: u64, shots: usize, jitter: f64, threads: usize) -> Vec<Fig6Row> {
    let space = LabelSpace::new(FIG6_QUBITS);
    let classes = first_round_classes(&space);
    let none = BTreeSet::new();
    let cells: Vec<(SubcubeClass, usize)> = classes
        .iter()
        .flat_map(|&class| [2usize, 4].into_iter().map(move |reps| (class, reps)))
        .collect();
    let fids = par_map(threads, cells.len(), |i| {
        let (class, reps) = cells[i];
        let couplings = class.couplings(&space, &none);
        let spec = TestSpec::for_couplings(format!("{class}"), &couplings, reps);
        let mut trap = fig6_trap(split_seed(seed, i), jitter);
        let hits = trap.run_xx_test(&spec.gates, spec.target, shots, Activity::Testing);
        hits as f64 / shots as f64
    });
    classes
        .iter()
        .enumerate()
        .map(|(k, &class)| Fig6Row {
            class,
            couplings: class.couplings(&space, &none).len(),
            fid2: fids[2 * k],
            fid4: fids[2 * k + 1],
        })
        .collect()
}

/// The classes a planted fault set must trip: every class containing at
/// least one planted coupling. For the Fig. 6 plant this is `(0,0)` and
/// `(1,0)` — {0,4} shares bits 0 and 1 — while the bit-complementary
/// {0,7} is invisible to round 1.
pub fn fig6_expected_failing() -> BTreeSet<SubcubeClass> {
    let space = LabelSpace::new(FIG6_QUBITS);
    first_round_classes(&space)
        .into_iter()
        .filter(|class| {
            FIG6_FAULTS.iter().any(|&(a, b, _)| class.contains_coupling(Coupling::new(a, b)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_is_thread_invariant() {
        let a = fig6_battery(11, 64, fig6_jitter(), 1);
        let b = fig6_battery(11, 64, fig6_jitter(), 8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fid2.to_bits(), y.fid2.to_bits());
            assert_eq!(x.fid4.to_bits(), y.fid4.to_bits());
        }
    }

    #[test]
    fn expected_failing_matches_paper_reading() {
        let expected = fig6_expected_failing();
        assert_eq!(expected.len(), 2, "{{0,4}} trips two classes, {{0,7}} none: {expected:?}");
    }
}
