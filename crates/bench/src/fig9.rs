//! Fig. 9 — identification probability vs spread of the composite fault
//! law, as reusable estimators on [`crate::par_trials`].
//!
//! Every coupling's under-rotation is drawn from the paper's composite
//! law (uniform within the 6% calibration band + right-Gaussian tail of
//! spread σ, footnote 10); the k largest draws are the machine's faults
//! and the sequential multi-fault pipeline must identify all of them.
//!
//! Each `(σ, k)` sweep point owns a private master seed and every trial
//! within it a [`split_seed`] derivation, so a panel is bit-identical at
//! any `--threads` value — the property the CI determinism job diffs.
//! (The historical `fig9` binary threaded one RNG through a whole panel
//! sequentially, which pinned it to a single core for its 797-second
//! baseline; the re-seeding changes the sampled values once, and the
//! refreshed baseline records the new stream.)

use crate::{par_trials, split_seed, ShotSampled};
use itqc_core::testplan::ScoreMode;
use itqc_core::{diagnose_all, DecoderPolicy, ExactExecutor, LabelSpace, MultiFaultConfig};
use rand::Rng;

/// Shots per test circuit (the paper's hardware budget).
pub const FIG9_SHOTS: usize = 300;

/// Pass/fail statistic of the spread study.
pub const FIG9_SCORE: ScoreMode = ScoreMode::WorstQubit;

/// The calibration band of the composite law: the uniform body lives in
/// `[0, 6%)` and the Gaussian tail starts at the 6% line.
pub const FIG9_BAND: f64 = 0.06;

/// The swept tail spreads of the figure's panels.
pub fn fig9_sigmas() -> Vec<f64> {
    vec![0.02, 0.05, 0.08, 0.11, 0.15, 0.20]
}

/// One trial, following the Fig. 9 caption: k faulty gates draw their
/// under-rotations from the right-Gaussian tail at the 6% line with
/// spread σ, "in the presence of uniformly spread under-rotation up to
/// 6%" on every other coupling. Larger σ separates the faults from the
/// body (and from each other), which is exactly why identification
/// improves with spread. The pipeline must find all k tail faults.
pub fn fig9_trial<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    sigma: f64,
    base_reps: usize,
    threshold: f64,
    decoder: DecoderPolicy,
    rng: &mut R,
) -> bool {
    let space = LabelSpace::new(n);
    let all = space.all_couplings();
    // Body: uniform within the calibration band.
    let mut draws: Vec<f64> = all.iter().map(|_| rng.gen_range(0.0..FIG9_BAND)).collect();
    // Tail: k faults at 0.06 + |N(0, σ)| on distinct random couplings.
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < k {
        chosen.insert(rng.gen_range(0..all.len()));
    }
    for &i in &chosen {
        draws[i] = FIG9_BAND + (sigma * itqc_math::rng::standard_normal(rng)).abs();
    }
    let truth: std::collections::BTreeSet<_> = chosen.iter().map(|&i| all[i]).collect();

    let exec = ExactExecutor::new(n).with_faults(all.iter().copied().zip(draws.iter().copied()));
    let mut shot_exec = ShotSampled::new(exec, rng.gen());
    let config = MultiFaultConfig {
        reps_ladder: vec![base_reps, base_reps * 2, base_reps * 4],
        threshold,
        canary_threshold: threshold,
        shots: FIG9_SHOTS,
        canary_shots: FIG9_SHOTS,
        max_faults: k + 2,
        decoder,
        // Shot-sampled scores over a ±6% uniform ambient body.
        ranked_sigma: itqc_core::threshold::observation_sigma(FIG9_SHOTS, 0.03, base_reps),
        score: FIG9_SCORE,
        canary_score: FIG9_SCORE,
        max_threshold_retunes: 4,
        fusion_rounds: 2,
        fault_magnitude: 0.10,
        canary_rotations: 0,
        canary_seed: 0,
    };
    let report = diagnose_all(&mut shot_exec, n, &config);
    let found: std::collections::BTreeSet<_> = report.couplings().into_iter().collect();
    truth.is_subset(&found)
}

/// One sweep row of a Fig. 9 panel.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Tail spread σ of the composite law.
    pub sigma: f64,
    /// `P(identify all k faults)` for k = 1, 2, 3 (index k − 1).
    pub p_identify: Vec<f64>,
}

/// A full Fig. 9 panel for one (machine size, base depth).
#[derive(Clone, Debug)]
pub struct Fig9Panel {
    /// Register size.
    pub n_qubits: usize,
    /// MS gates per coupling on the first rung.
    pub reps: usize,
    /// The calibrated pass/fail threshold used by every trial.
    pub threshold: f64,
    /// One row per swept σ, ascending.
    pub rows: Vec<Fig9Row>,
}

/// Measures one Fig. 9 panel: `trials` composite-law machines per
/// `(σ, k)` sweep point on up to `threads` workers. Bit-identical at
/// any thread count (each point derives a private seed per trial).
pub fn fig9_panel(
    n_qubits: usize,
    reps: usize,
    threshold: f64,
    trials: usize,
    threads: usize,
    decoder: DecoderPolicy,
    seed: u64,
) -> Fig9Panel {
    let rows = fig9_sigmas()
        .into_iter()
        .enumerate()
        .map(|(si, sigma)| {
            let p_identify = (1..=3usize)
                .map(|k| {
                    let master = split_seed(seed, si * 4 + k);
                    let ok = par_trials(
                        threads,
                        trials,
                        |t| split_seed(master, t),
                        |_, rng| fig9_trial(n_qubits, k, sigma, reps, threshold, decoder, rng),
                    );
                    ok.iter().filter(|&&hit| hit).count() as f64 / trials.max(1) as f64
                })
                .collect();
            Fig9Row { sigma, p_identify }
        })
        .collect();
    Fig9Panel { n_qubits, reps, threshold, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_is_thread_invariant() {
        let run = |threads| fig9_panel(8, 2, 0.62, 4, threads, DecoderPolicy::Ranked, 2025);
        let (a, b) = (run(1), run(8));
        assert_eq!(a.rows.len(), fig9_sigmas().len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.sigma, y.sigma);
            assert_eq!(x.p_identify, y.p_identify, "sigma {}", x.sigma);
        }
    }

    #[test]
    fn wide_spreads_identify_single_faults_narrow_ones_hide() {
        // The figure's defining shape: at σ = 0.20 a single tail fault
        // sits far above the 6% body (the panel's measured rate is
        // ~0.80), while at σ = 0.02 it hides inside the calibration
        // band (~0.07).
        let threshold = crate::ambient::calibrate_threshold_uniform_par(
            0, 8, 2, FIG9_BAND, FIG9_SCORE, FIG9_SHOTS, 0.005, 30, 11,
        );
        let hits_at = |sigma: f64, master: u64| {
            par_trials(
                0,
                12,
                |t| split_seed(master, t),
                |_, rng| fig9_trial(8, 1, sigma, 2, threshold, DecoderPolicy::Ranked, rng),
            )
            .iter()
            .filter(|&&h| h)
            .count()
        };
        let wide = hits_at(0.20, 909);
        let narrow = hits_at(0.02, 909);
        assert!(wide >= 7, "only {wide}/12 wide-spread single faults identified");
        assert!(narrow <= 4, "{narrow}/12 in-band faults identified — band faults must hide");
        assert!(wide > narrow, "identification must improve with spread ({narrow} → {wide})");
    }
}
