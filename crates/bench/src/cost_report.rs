//! Whole-run cost prediction assembled from the backend's static cost
//! model ([`itqc_backend::SimCostModel`]).
//!
//! Under `--cost-report` the `fig8`, `fig9` and `table2` binaries print
//! one stderr line comparing a prediction assembled here against the
//! measured wall-clock (stderr, so the stdout determinism diffs are
//! unaffected). The prediction has two parts:
//!
//! * **backend primitives** — table builds, exact walks and drawn
//!   strings, priced by [`SimCostModel`] from the component profile of
//!   each planned test circuit (known statically: first-round class
//!   tests are coupling matchings, so their graph components are known
//!   before any circuit is built);
//! * **harness overhead** — a flat [`TEST_OVERHEAD_SECONDS`] per
//!   executed test, covering everything the backend model cannot see
//!   (spec assembly, protocol bookkeeping, decoding, score memo
//!   traffic, allocator churn).
//!
//! Adaptive protocols do not announce their exact test count up front,
//! so the plans below count the deterministic battery passes plus a
//! flat [`ADAPTIVE_TESTS_PER_TRIAL`] allowance. Walk counts are a
//! deliberate over-count: the cross-trial score memo
//! ([`itqc_backend::memo`]) turns repeated evaluations into cache hits
//! the static plan cannot see, so walk-heavy predictions (table2) land
//! ~2–3× above measured — still inside the CI gate, which accepts a
//! predicted/measured ratio anywhere in `[0.25, 4.0]`. The report
//! exists to catch the model (or an engine regression) drifting out of
//! touch by an order of magnitude, not to flatter a microbenchmark.

use itqc_backend::{CostReport, SimCostModel};
use itqc_circuit::Coupling;
use itqc_core::{first_round_classes, LabelSpace};
use std::collections::BTreeSet;
use std::time::Duration;

/// Flat harness seconds per executed test circuit (reference 1-vCPU
/// container, release build): spec assembly, protocol bookkeeping,
/// memo traffic. Deliberately small — the measured runs put virtually
/// all their time inside the backend primitives (fig8 `--sizes=8`
/// measures 0.2 s against a 0.17 s primitive-only prediction), so the
/// harness term only keeps tiny-circuit plans from predicting zero.
pub const TEST_OVERHEAD_SECONDS: f64 = 1.0e-6;

/// Flat allowance for the adaptive tail of one diagnosis
/// (disambiguation rounds + verification point tests) beyond the
/// deterministic first-round battery passes.
pub const ADAPTIVE_TESTS_PER_TRIAL: u64 = 3;

/// Connected-component sizes of the coupling graph of one test over
/// `couplings` (ascending). This is exactly the factorisation the
/// analytic backend discovers at prepare time, computed here without
/// building a circuit.
pub fn component_sizes(couplings: &[Coupling]) -> Vec<usize> {
    let qubits: BTreeSet<usize> =
        couplings.iter().flat_map(|c| [c.endpoints().0, c.endpoints().1]).collect();
    let index: Vec<usize> = qubits.iter().copied().collect();
    let mut parent: Vec<usize> = (0..index.len()).collect();
    fn root(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for c in couplings {
        let (a, b) = c.endpoints();
        let (ia, ib) = (
            index.binary_search(&a).expect("endpoint indexed"),
            index.binary_search(&b).expect("endpoint indexed"),
        );
        let (ra, rb) = (root(&mut parent, ia), root(&mut parent, ib));
        parent[ra] = rb;
    }
    let mut counts = std::collections::BTreeMap::new();
    for i in 0..index.len() {
        *counts.entry(root(&mut parent, i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Component profile of every non-empty first-round class test on an
/// `n_qubits` machine — the battery every calibrator and every
/// diagnosis rung walks.
pub fn battery_profiles(n_qubits: usize) -> Vec<Vec<usize>> {
    let space = LabelSpace::new(n_qubits);
    let none = BTreeSet::new();
    first_round_classes(&space)
        .into_iter()
        .filter_map(|class| {
            let couplings = class.couplings(&space, &none);
            if couplings.is_empty() {
                None
            } else {
                Some(component_sizes(&couplings))
            }
        })
        .collect()
}

/// A whole-run prediction: backend primitives plus the per-test
/// harness allowance.
#[derive(Clone, Debug, Default)]
pub struct RunPrediction {
    /// Backend-primitive accumulator (builds / walks / shots).
    pub backend: CostReport,
    /// Test circuits the plan executes (priced at
    /// [`TEST_OVERHEAD_SECONDS`] each).
    pub tests: u64,
}

impl RunPrediction {
    /// Total predicted wall-clock seconds.
    pub fn total_seconds(&self) -> f64 {
        self.backend.total_seconds() + self.harness_seconds()
    }

    /// The harness-overhead share of the prediction.
    pub fn harness_seconds(&self) -> f64 {
        self.tests as f64 * TEST_OVERHEAD_SECONDS
    }
}

/// Predicted cost of the Fig. 8 detectability study over `sizes`
/// (2-MS and 4-MS panels each): string-sampled threshold calibration,
/// then per `(u, trial)` one exact contrast pass and one sampled
/// protocol pass over the battery.
pub fn fig8_prediction(sizes: &[usize], trials: usize, shots: usize) -> RunPrediction {
    let model = SimCostModel::new();
    let mut p = RunPrediction::default();
    let point = [2usize]; // adaptive point tests touch one coupling
    let sweep = crate::detectability::fig8_sweep().len() as u64;
    for &n in sizes {
        let profiles = battery_profiles(n);
        let cal_trials = 60.max(trials / 2) as u64;
        for _reps_panel in 0..2u32 {
            for prof in &profiles {
                p.backend.add_builds(&model, prof, cal_trials);
                p.backend.add_shots(&model, prof, cal_trials * shots as u64);
            }
            p.tests += cal_trials * profiles.len() as u64;
            let runs = sweep * trials as u64;
            for prof in &profiles {
                p.backend.add_walks(&model, prof, runs);
                p.backend.add_builds(&model, prof, runs);
                p.backend.add_shots(&model, prof, runs * shots as u64);
            }
            p.backend.add_builds(&model, &point, runs * ADAPTIVE_TESTS_PER_TRIAL);
            p.backend.add_shots(&model, &point, runs * ADAPTIVE_TESTS_PER_TRIAL * shots as u64);
            p.tests += runs * (2 * profiles.len() as u64 + ADAPTIVE_TESTS_PER_TRIAL);
        }
    }
    p
}

/// Predicted cost of the Fig. 9 spread study (six panels): exact-score
/// trials with binomial shot noise, so the backend currency is walks.
/// Each multi-fault trial typically exhausts two rungs of the
/// repetition ladder over the battery.
pub fn fig9_prediction(trials: usize) -> RunPrediction {
    let model = SimCostModel::new();
    let mut p = RunPrediction::default();
    let point = [2usize];
    let points = crate::fig9::fig9_sigmas().len() as u64 * 3; // k = 1..3
    for &n in &[8usize, 16, 32] {
        let profiles = battery_profiles(n);
        for _reps_panel in 0..2u32 {
            let cal_trials = 60u64;
            for prof in &profiles {
                p.backend.add_walks(&model, prof, cal_trials);
            }
            p.tests += cal_trials * profiles.len() as u64;
            let runs = points * trials as u64;
            for prof in &profiles {
                p.backend.add_walks(&model, prof, 2 * runs);
            }
            p.backend.add_walks(&model, &point, runs * ADAPTIVE_TESTS_PER_TRIAL);
            p.tests += runs * (2 * profiles.len() as u64 + ADAPTIVE_TESTS_PER_TRIAL);
        }
    }
    p
}

/// Predicted cost of the Table II study: the 3×3 main grid (the
/// 32-qubit 3-fault cell runs half the trials) plus the 8-qubit
/// decoder-policy ablation, all on the exact oracle (walks only).
pub fn table2_prediction(trials: usize) -> RunPrediction {
    let model = SimCostModel::new();
    let mut p = RunPrediction::default();
    let point = [2usize];
    let cell = |p: &mut RunPrediction, n: usize, cell_trials: u64| {
        let profiles = battery_profiles(n);
        for prof in &profiles {
            p.backend.add_walks(&model, prof, 2 * cell_trials);
        }
        p.backend.add_walks(&model, &point, cell_trials * ADAPTIVE_TESTS_PER_TRIAL);
        p.tests += cell_trials * (2 * profiles.len() as u64 + ADAPTIVE_TESTS_PER_TRIAL);
    };
    for n in [8usize, 16, 32] {
        for k in 1..=3usize {
            let t = if n == 32 && k == 3 { trials / 2 } else { trials };
            cell(&mut p, n, t.max(2) as u64);
        }
    }
    // Ablation: 4 policies × 3 fault counts, 8 qubits.
    for _ in 0..12u32 {
        cell(&mut p, 8, trials.max(2) as u64);
    }
    p
}

/// Prints the prediction next to the measured wall-clock on stderr.
/// The final `ratio` token (predicted / measured) is what the CI gate
/// bounds-checks.
pub fn emit(label: &str, prediction: &RunPrediction, measured: Duration) {
    let predicted = prediction.total_seconds();
    let measured_s = measured.as_secs_f64();
    let ratio = predicted / measured_s.max(1e-9);
    eprintln!(
        "cost-report {label}: predicted {predicted:.1} s [{backend}; {tests} tests x harness \
         {overhead:.0} us = {harness:.1} s], measured {measured_s:.1} s, ratio {ratio:.2}",
        backend = prediction.backend,
        tests = prediction.tests,
        overhead = TEST_OVERHEAD_SECONDS * 1e6,
        harness = prediction.harness_seconds(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_follow_the_coupling_graph() {
        let c = |a, b| Coupling::new(a, b);
        // A matching: all pairs, independent.
        assert_eq!(component_sizes(&[c(0, 1), c(2, 3), c(4, 5)]), vec![2, 2, 2]);
        // A chain merges into one component.
        assert_eq!(component_sizes(&[c(0, 1), c(1, 2), c(2, 3)]), vec![4]);
        // Mixed shapes sort ascending.
        assert_eq!(component_sizes(&[c(0, 1), c(1, 2), c(5, 6)]), vec![2, 3]);
        assert_eq!(component_sizes(&[]), Vec::<usize>::new());
    }

    #[test]
    fn battery_profiles_cover_every_class() {
        let profiles = battery_profiles(8);
        assert!(!profiles.is_empty());
        // Class tests couple at least two qubits per component and
        // never exceed the register.
        for prof in &profiles {
            assert!(!prof.is_empty());
            assert!(prof.iter().all(|&c| c >= 2), "{prof:?}");
            assert!(prof.iter().sum::<usize>() <= 8);
        }
        // Bigger machines run bigger batteries.
        assert!(battery_profiles(32).len() >= profiles.len());
    }

    #[test]
    fn predictions_scale_with_trials() {
        let small = fig8_prediction(&[8], 10, 300);
        let big = fig8_prediction(&[8], 100, 300);
        assert!(big.total_seconds() > 5.0 * small.total_seconds());
        // Calibration is floored at 60 trials, so the sampled-shot
        // count grows slower than the 10× trial ratio but still
        // dominates.
        assert!(big.backend.shots > 5 * small.backend.shots);
        // fig9 / table2 are walk-only plans: no sampled strings.
        assert_eq!(fig9_prediction(60).backend.shots, 0);
        assert_eq!(table2_prediction(300).backend.shots, 0);
        assert!(table2_prediction(300).tests > 0);
    }
}
