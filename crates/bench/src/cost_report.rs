//! Whole-run cost prediction assembled from the backend's static cost
//! model ([`itqc_backend::SimCostModel`]).
//!
//! Under `--cost-report` the `fig8`, `fig9` and `table2` binaries print
//! one stderr line comparing a prediction assembled here against the
//! measured wall-clock (stderr, so the stdout determinism diffs are
//! unaffected). The prediction has two parts:
//!
//! * **backend primitives** — table builds, exact walks and drawn
//!   strings, priced by [`SimCostModel`] from the component profile of
//!   each planned test circuit (known statically: first-round class
//!   tests are coupling matchings, so their graph components are known
//!   before any circuit is built);
//! * **harness overhead** — a flat [`TEST_OVERHEAD_SECONDS`] per
//!   executed test, covering everything the backend model cannot see
//!   (spec assembly, protocol bookkeeping, decoding, score memo
//!   traffic, allocator churn).
//!
//! Adaptive protocols do not announce their exact test count up front,
//! so the plans below count the deterministic battery passes plus a
//! flat [`ADAPTIVE_TESTS_PER_TRIAL`] allowance, and the static walk
//! count prices every score evaluation as a full `2^c` walk — an
//! over-count, because the cross-trial score memo
//! ([`itqc_backend::memo`]) turns repeated evaluations into cache hits
//! (historically ~3× on table2). `--cost-report` therefore enables the
//! `itqc_obs` event layer and reprices the run from its *observed*
//! counters ([`observed_phases`]): memoized trials are priced at
//! lookup cost, real Gray walks and closed-form worst-qubit
//! evaluations are split, and the gated ratio becomes
//! observed/measured — tight enough for a `[0.25, 2.0]` gate on table2
//! (fig8/fig9 keep `[0.25, 4.0]`). The static prediction stays on the
//! line as the plan-level sanity check and is the fallback ratio when
//! the layer is off. The report exists to catch the model (or an
//! engine regression) drifting out of touch by an order of magnitude,
//! not to flatter a microbenchmark.

use itqc_backend::cost::{PHASE_STEP_SECONDS, SCORE_MEMO_LOOKUP_SECONDS};
use itqc_backend::{CostReport, SimCostModel};
use itqc_circuit::Coupling;
use itqc_core::{first_round_classes, LabelSpace};
use itqc_obs::Snapshot;
use std::collections::BTreeSet;
use std::time::Duration;

/// Flat harness seconds per executed test circuit (reference 1-vCPU
/// container, release build): spec assembly, protocol bookkeeping,
/// memo traffic. Deliberately small — the measured runs put virtually
/// all their time inside the backend primitives (fig8 `--sizes=8`
/// measures 0.2 s against a 0.17 s primitive-only prediction), so the
/// harness term only keeps tiny-circuit plans from predicting zero.
pub const TEST_OVERHEAD_SECONDS: f64 = 1.0e-6;

/// Flat allowance for the adaptive tail of one diagnosis
/// (disambiguation rounds + verification point tests) beyond the
/// deterministic first-round battery passes.
pub const ADAPTIVE_TESTS_PER_TRIAL: u64 = 3;

/// Connected-component sizes of the coupling graph of one test over
/// `couplings` (ascending). This is exactly the factorisation the
/// analytic backend discovers at prepare time, computed here without
/// building a circuit.
pub fn component_sizes(couplings: &[Coupling]) -> Vec<usize> {
    let qubits: BTreeSet<usize> =
        couplings.iter().flat_map(|c| [c.endpoints().0, c.endpoints().1]).collect();
    let index: Vec<usize> = qubits.iter().copied().collect();
    let mut parent: Vec<usize> = (0..index.len()).collect();
    fn root(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for c in couplings {
        let (a, b) = c.endpoints();
        let (ia, ib) = (
            index.binary_search(&a).expect("endpoint indexed"),
            index.binary_search(&b).expect("endpoint indexed"),
        );
        let (ra, rb) = (root(&mut parent, ia), root(&mut parent, ib));
        parent[ra] = rb;
    }
    let mut counts = std::collections::BTreeMap::new();
    for i in 0..index.len() {
        *counts.entry(root(&mut parent, i)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable();
    sizes
}

/// Component profile of every non-empty first-round class test on an
/// `n_qubits` machine — the battery every calibrator and every
/// diagnosis rung walks.
pub fn battery_profiles(n_qubits: usize) -> Vec<Vec<usize>> {
    let space = LabelSpace::new(n_qubits);
    let none = BTreeSet::new();
    first_round_classes(&space)
        .into_iter()
        .filter_map(|class| {
            let couplings = class.couplings(&space, &none);
            if couplings.is_empty() {
                None
            } else {
                Some(component_sizes(&couplings))
            }
        })
        .collect()
}

/// A whole-run prediction: backend primitives plus the per-test
/// harness allowance.
#[derive(Clone, Debug, Default)]
pub struct RunPrediction {
    /// Backend-primitive accumulator (builds / walks / shots).
    pub backend: CostReport,
    /// Test circuits the plan executes (priced at
    /// [`TEST_OVERHEAD_SECONDS`] each).
    pub tests: u64,
}

impl RunPrediction {
    /// Total predicted wall-clock seconds.
    pub fn total_seconds(&self) -> f64 {
        self.backend.total_seconds() + self.harness_seconds()
    }

    /// The harness-overhead share of the prediction.
    pub fn harness_seconds(&self) -> f64 {
        self.tests as f64 * TEST_OVERHEAD_SECONDS
    }
}

/// Predicted cost of the Fig. 8 detectability study over `sizes`
/// (2-MS and 4-MS panels each): string-sampled threshold calibration,
/// then per `(u, trial)` one exact contrast pass and one sampled
/// protocol pass over the battery.
pub fn fig8_prediction(sizes: &[usize], trials: usize, shots: usize) -> RunPrediction {
    let model = SimCostModel::new();
    let mut p = RunPrediction::default();
    let point = [2usize]; // adaptive point tests touch one coupling
    let sweep = crate::detectability::fig8_sweep().len() as u64;
    for &n in sizes {
        let profiles = battery_profiles(n);
        let cal_trials = 60.max(trials / 2) as u64;
        for _reps_panel in 0..2u32 {
            for prof in &profiles {
                p.backend.add_builds(&model, prof, cal_trials);
                p.backend.add_shots(&model, prof, cal_trials * shots as u64);
            }
            p.tests += cal_trials * profiles.len() as u64;
            let runs = sweep * trials as u64;
            for prof in &profiles {
                p.backend.add_walks(&model, prof, runs);
                p.backend.add_builds(&model, prof, runs);
                p.backend.add_shots(&model, prof, runs * shots as u64);
            }
            p.backend.add_builds(&model, &point, runs * ADAPTIVE_TESTS_PER_TRIAL);
            p.backend.add_shots(&model, &point, runs * ADAPTIVE_TESTS_PER_TRIAL * shots as u64);
            p.tests += runs * (2 * profiles.len() as u64 + ADAPTIVE_TESTS_PER_TRIAL);
        }
    }
    p
}

/// Predicted cost of the Fig. 9 spread study (six panels): exact-score
/// trials with binomial shot noise, so the backend currency is walks.
/// Each multi-fault trial typically exhausts two rungs of the
/// repetition ladder over the battery.
pub fn fig9_prediction(trials: usize) -> RunPrediction {
    let model = SimCostModel::new();
    let mut p = RunPrediction::default();
    let point = [2usize];
    let points = crate::fig9::fig9_sigmas().len() as u64 * 3; // k = 1..3
    for &n in &[8usize, 16, 32] {
        let profiles = battery_profiles(n);
        for _reps_panel in 0..2u32 {
            let cal_trials = 60u64;
            for prof in &profiles {
                p.backend.add_walks(&model, prof, cal_trials);
            }
            p.tests += cal_trials * profiles.len() as u64;
            let runs = points * trials as u64;
            for prof in &profiles {
                p.backend.add_walks(&model, prof, 2 * runs);
            }
            p.backend.add_walks(&model, &point, runs * ADAPTIVE_TESTS_PER_TRIAL);
            p.tests += runs * (2 * profiles.len() as u64 + ADAPTIVE_TESTS_PER_TRIAL);
        }
    }
    p
}

/// Predicted cost of the Table II study: the 3×3 main grid (the
/// 32-qubit 3-fault cell runs half the trials) plus the 8-qubit
/// decoder-policy ablation, all on the exact oracle (walks only).
pub fn table2_prediction(trials: usize) -> RunPrediction {
    let model = SimCostModel::new();
    let mut p = RunPrediction::default();
    let point = [2usize];
    let cell = |p: &mut RunPrediction, n: usize, cell_trials: u64| {
        let profiles = battery_profiles(n);
        for prof in &profiles {
            p.backend.add_walks(&model, prof, 2 * cell_trials);
        }
        p.backend.add_walks(&model, &point, cell_trials * ADAPTIVE_TESTS_PER_TRIAL);
        p.tests += cell_trials * (2 * profiles.len() as u64 + ADAPTIVE_TESTS_PER_TRIAL);
    };
    for n in [8usize, 16, 32] {
        for k in 1..=3usize {
            let t = if n == 32 && k == 3 { trials / 2 } else { trials };
            cell(&mut p, n, t.max(2) as u64);
        }
    }
    // Ablation: 4 policies × 3 fault counts, 8 qubits.
    for _ in 0..12u32 {
        cell(&mut p, 8, trials.max(2) as u64);
    }
    p
}

/// One phase of the per-phase predicted-vs-observed table: the static
/// plan's seconds next to the same unit prices applied to the *observed*
/// event counters of the run.
#[derive(Clone, Copy, Debug)]
pub struct PhaseCost {
    /// Phase name (`prep`/`walk`/`memo`/`sample`/`harness`).
    pub phase: &'static str,
    /// Static-plan seconds for the phase.
    pub predicted: f64,
    /// Observed-counter seconds for the phase.
    pub observed: f64,
}

fn hist<'a>(snap: &'a Snapshot, name: &str) -> &'a [(u64, u64)] {
    snap.histograms.get(name).map(Vec::as_slice).unwrap_or(&[])
}

/// Prices the run's *observed* event counters phase by phase with the
/// same static unit costs, next to the plan's prediction. This is what
/// localises cost-model drift: a static plan prices every score
/// evaluation as a full `2^c` walk, but the observed table splits them
/// into real Gray walks (memo misses), closed-form worst-qubit
/// evaluations, backend table lookups, and memo lookup traffic — so a
/// whole-run ratio of 3× decomposes into "the walk phase is over-counted
/// 10×, everything else is fine". Returns `None` when the observability
/// layer is off (plain `--cost-report` runs enable it).
pub fn observed_phases(prediction: &RunPrediction) -> Option<Vec<PhaseCost>> {
    if !itqc_obs::enabled() {
        return None;
    }
    itqc_obs::event::flush();
    let model = SimCostModel::new();
    let det = itqc_obs::global().deterministic_snapshot();
    let nd = itqc_obs::global().nondeterministic_snapshot();
    // Tables actually built (cache hits excluded), by component size.
    // (`fold` rather than `sum`: an empty f64 `sum()` is `-0.0`, which
    // would render as "-0.00 s" for phases a binary never exercises.)
    let prep: f64 = hist(&nd, "backend.prep.component_qubits")
        .iter()
        .map(|&(c, w)| w as f64 * model.table_build_seconds(&[c as usize]))
        .fold(0.0, |acc, s| acc + s);
    // Exact evaluation: real Gray walks at the exponential price,
    // closed-form worst-qubit evaluations at their O(support²)
    // trig cost, backend-path exact queries at table-lookup cost.
    let walks: f64 = hist(&nd, "core.walk.support_qubits")
        .iter()
        .map(|&(c, w)| w as f64 * model.exact_walk_seconds(&[c as usize]))
        .fold(0.0, |acc, s| acc + s);
    let agreements: f64 = hist(&nd, "core.agreement.support_qubits")
        .iter()
        .map(|&(c, w)| w as f64 * (c * c) as f64 * PHASE_STEP_SECONDS)
        .fold(0.0, |acc, s| acc + s);
    let queries = det.counters.get("core.exact.queries").copied().unwrap_or(0);
    let walk = walks + agreements + queries as f64 * SCORE_MEMO_LOOKUP_SECONDS;
    // Memoised score traffic the static plan cannot see: every lookup
    // pays key construction + hash, hits pay nothing more (their eval
    // was priced in the walk phase when it was a miss).
    let lookups = det.counters.get("backend.memo.lookups").copied().unwrap_or(0);
    let memo = lookups as f64 * SCORE_MEMO_LOOKUP_SECONDS;
    // Strings drawn, priced per component size actually sampled.
    let sample: f64 = hist(&det, "backend.sample.component_qubits_draws")
        .iter()
        .map(|&(c, w)| model.sample_seconds(&[c as usize], w))
        .fold(0.0, |acc, s| acc + s);
    Some(vec![
        PhaseCost { phase: "prep", predicted: prediction.backend.table_seconds, observed: prep },
        PhaseCost { phase: "walk", predicted: prediction.backend.walk_seconds, observed: walk },
        PhaseCost { phase: "memo", predicted: 0.0, observed: memo },
        PhaseCost {
            phase: "sample",
            predicted: prediction.backend.sample_seconds,
            observed: sample,
        },
        PhaseCost {
            phase: "harness",
            predicted: prediction.harness_seconds(),
            observed: prediction.harness_seconds(),
        },
    ])
}

/// Prints the prediction next to the measured wall-clock on stderr.
/// The final `ratio` token is what the CI gate bounds-checks: with the
/// observability layer on (any `--cost-report` run) it is the
/// observed-counter pricing over measured, preceded by the per-phase
/// table; with the layer off it falls back to the static prediction
/// over measured.
pub fn emit(label: &str, prediction: &RunPrediction, measured: Duration) {
    let predicted = prediction.total_seconds();
    let measured_s = measured.as_secs_f64();
    match observed_phases(prediction) {
        Some(phases) => {
            for p in &phases {
                eprintln!(
                    "cost-report-phase {label} {phase}: predicted {pred:.2} s, observed {obs:.2} s",
                    phase = p.phase,
                    pred = p.predicted,
                    obs = p.observed,
                );
            }
            let observed: f64 = phases.iter().map(|p| p.observed).sum();
            let ratio = observed / measured_s.max(1e-9);
            eprintln!(
                "cost-report {label}: predicted {predicted:.1} s [{backend}; {tests} tests x \
                 harness {overhead:.0} us = {harness:.1} s], observed {observed:.1} s, measured \
                 {measured_s:.1} s, ratio {ratio:.2}",
                backend = prediction.backend,
                tests = prediction.tests,
                overhead = TEST_OVERHEAD_SECONDS * 1e6,
                harness = prediction.harness_seconds(),
            );
        }
        None => {
            let ratio = predicted / measured_s.max(1e-9);
            eprintln!(
                "cost-report {label}: predicted {predicted:.1} s [{backend}; {tests} tests x \
                 harness {overhead:.0} us = {harness:.1} s], measured {measured_s:.1} s, ratio \
                 {ratio:.2}",
                backend = prediction.backend,
                tests = prediction.tests,
                overhead = TEST_OVERHEAD_SECONDS * 1e6,
                harness = prediction.harness_seconds(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_follow_the_coupling_graph() {
        let c = |a, b| Coupling::new(a, b);
        // A matching: all pairs, independent.
        assert_eq!(component_sizes(&[c(0, 1), c(2, 3), c(4, 5)]), vec![2, 2, 2]);
        // A chain merges into one component.
        assert_eq!(component_sizes(&[c(0, 1), c(1, 2), c(2, 3)]), vec![4]);
        // Mixed shapes sort ascending.
        assert_eq!(component_sizes(&[c(0, 1), c(1, 2), c(5, 6)]), vec![2, 3]);
        assert_eq!(component_sizes(&[]), Vec::<usize>::new());
    }

    #[test]
    fn battery_profiles_cover_every_class() {
        let profiles = battery_profiles(8);
        assert!(!profiles.is_empty());
        // Class tests couple at least two qubits per component and
        // never exceed the register.
        for prof in &profiles {
            assert!(!prof.is_empty());
            assert!(prof.iter().all(|&c| c >= 2), "{prof:?}");
            assert!(prof.iter().sum::<usize>() <= 8);
        }
        // Bigger machines run bigger batteries.
        assert!(battery_profiles(32).len() >= profiles.len());
    }

    #[test]
    fn predictions_scale_with_trials() {
        let small = fig8_prediction(&[8], 10, 300);
        let big = fig8_prediction(&[8], 100, 300);
        assert!(big.total_seconds() > 5.0 * small.total_seconds());
        // Calibration is floored at 60 trials, so the sampled-shot
        // count grows slower than the 10× trial ratio but still
        // dominates.
        assert!(big.backend.shots > 5 * small.backend.shots);
        // fig9 / table2 are walk-only plans: no sampled strings.
        assert_eq!(fig9_prediction(60).backend.shots, 0);
        assert_eq!(table2_prediction(300).backend.shots, 0);
        assert!(table2_prediction(300).tests > 0);
    }
}
