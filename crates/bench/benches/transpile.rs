//! Criterion benchmarks: circuit lowering and fusion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itqc_circuit::{library, transpile};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_lower_qft(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_qft");
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let circuit = library::qft(n);
            b.iter(|| std::hint::black_box(transpile::to_native(&circuit)));
        });
    }
    group.finish();
}

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_fuse");
    for n in [8usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SmallRng::seed_from_u64(5);
            let native = transpile::to_native(&library::random_circuit(n, 6, &mut rng));
            b.iter(|| std::hint::black_box(transpile::fuse_single_qubit_runs(&native)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lower_qft, bench_fusion);
criterion_main!(benches);
