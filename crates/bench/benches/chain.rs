//! Criterion benchmarks: ion-chain physics (equilibrium + normal modes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itqc_trap::chain::{pulse_alpha_sqr, IonChain, PulseSegment};

fn bench_equilibrium(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_equilibrium");
    for n in [11usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(IonChain::new(n)));
        });
    }
    group.finish();
}

fn bench_transverse_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_transverse_modes");
    group.sample_size(20);
    for n in [11usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let chain = IonChain::new(n);
            // Stay above the zigzag threshold, which scales ~ N^1.72.
            let a = 3.0 * (n as f64).powf(1.72);
            b.iter(|| std::hint::black_box(chain.transverse_modes(a)));
        });
    }
    group.finish();
}

fn bench_pulse_residuals(c: &mut Criterion) {
    c.bench_function("pulse_alpha_all_modes_n11", |b| {
        let chain = IonChain::new(11);
        let modes = chain.transverse_modes(25.0);
        let segments: Vec<PulseSegment> = (0..16)
            .map(|k| PulseSegment { amplitude: 0.05 * (1.0 + 0.1 * k as f64), duration: 3.0 })
            .collect();
        b.iter(|| std::hint::black_box(pulse_alpha_sqr(&segments, &modes)));
    });
}

criterion_group!(benches, bench_equilibrium, bench_transverse_modes, bench_pulse_residuals);
criterion_main!(benches);
