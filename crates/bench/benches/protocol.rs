//! Criterion benchmarks: protocol-side costs (test generation, diagnosis,
//! multi-fault decoding) as machine size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itqc_circuit::Coupling;
use itqc_core::decoder::{failing_set_of, minimal_covers};
use itqc_core::{ExactExecutor, LabelSpace, SingleFaultProtocol, TestSpec};
use std::collections::BTreeSet;

fn bench_single_fault_diagnosis(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_fault_diagnose");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let fault = Coupling::new(1, n - 2);
            b.iter(|| {
                let mut exec = ExactExecutor::new(n).with_fault(fault, 0.4);
                let protocol = SingleFaultProtocol::new(n, 4, 0.5, 1);
                std::hint::black_box(protocol.diagnose(&mut exec))
            });
        });
    }
    group.finish();
}

fn bench_test_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("testplan_generation");
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let space = LabelSpace::new(n);
            let couplings = space.all_couplings();
            b.iter(|| std::hint::black_box(TestSpec::for_couplings("bench", &couplings, 4)));
        });
    }
    group.finish();
}

fn bench_set_cover_decoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_cover_decoder");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let space = LabelSpace::new(n);
            let faults = vec![Coupling::new(0, 2), Coupling::new(1, n - 1)];
            let failing = failing_set_of(&faults, &space);
            let none = BTreeSet::new();
            b.iter(|| std::hint::black_box(minimal_covers(&failing, &space, &none, 3, 2)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_fault_diagnosis,
    bench_test_generation,
    bench_set_cover_decoder
);
criterion_main!(benches);
