//! Criterion benchmarks: the two simulator backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use itqc_circuit::library;
use itqc_sim::{run, XxCircuit};
use std::f64::consts::FRAC_PI_2;

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_run");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let circuit = library::ghz(n);
            b.iter(|| std::hint::black_box(run(&circuit)));
        });
    }
    group.finish();
}

fn bench_xx_exact_fidelity(c: &mut Criterion) {
    // The Gray-code Ising sum for a full first-round class test.
    let mut group = c.benchmark_group("xx_class_fidelity");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut xx = XxCircuit::new(n);
            let class: Vec<usize> = (0..n).step_by(2).collect();
            for (i, &a) in class.iter().enumerate() {
                for &bq in &class[i + 1..] {
                    xx.add_xx(a, bq, 2.0 * FRAC_PI_2 * 0.98);
                }
            }
            b.iter(|| std::hint::black_box(xx.fidelity(0)));
        });
    }
    group.finish();
}

fn bench_xx_population_score(c: &mut Criterion) {
    // The closed-form marginal score is the scalable fast path.
    let mut group = c.benchmark_group("xx_population_score");
    for n in [32usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut xx = XxCircuit::new(n);
            let class: Vec<usize> = (0..n).step_by(2).collect();
            for (i, &a) in class.iter().enumerate() {
                for &bq in &class[i + 1..] {
                    xx.add_xx(a, bq, 2.0 * FRAC_PI_2 * 0.97);
                }
            }
            b.iter(|| std::hint::black_box(xx.min_qubit_agreement(0)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_xx_exact_fidelity, bench_xx_population_score);
criterion_main!(benches);
