//! Symmetric eigenproblems via the cyclic Jacobi method.
//!
//! The ion-chain normal-mode computation (`itqc-trap::chain`) needs all
//! eigenvalues and eigenvectors of a small (N ≤ a few hundred) real symmetric
//! Hessian. Cyclic Jacobi is simple, numerically robust, and more than fast
//! enough at these sizes.

/// Result of a symmetric eigendecomposition: `A = V · diag(λ) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymEig {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Eigenvectors stored row-major: `vectors[k]` is the unit eigenvector
    /// for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenvalues/eigenvectors of a real symmetric matrix given in
/// row-major order.
///
/// Off-diagonal asymmetry up to `1e-9` is tolerated (the matrix is
/// symmetrised internally); larger asymmetry panics.
///
/// # Panics
///
/// Panics if `a.len() != n*n`, or the matrix is materially non-symmetric,
/// or the iteration fails to converge (pathological input).
///
/// # Example
///
/// ```
/// use itqc_math::eig::sym_eig;
/// // [[2,1],[1,2]] has eigenvalues 1 and 3.
/// let e = sym_eig(&[2.0, 1.0, 1.0, 2.0], 2);
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// ```
pub fn sym_eig(a: &[f64], n: usize) -> SymEig {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    let mut m = vec![0.0; n * n];
    for r in 0..n {
        for c in 0..n {
            let x = a[r * n + c];
            let y = a[c * n + r];
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                "matrix is not symmetric at ({r},{c})"
            );
            m[r * n + c] = 0.5 * (x + y);
        }
    }
    // V starts as identity and accumulates rotations.
    let mut v = vec![0.0; n * n];
    for k in 0..n {
        v[k * n + k] = 1.0;
    }

    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m[r * n + c] * m[r * n + c];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + frobenius(&m, n)) {
            return finish(m, v, n);
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                // Classic Jacobi rotation angle.
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let cos = 1.0 / (t * t + 1.0).sqrt();
                let sin = t * cos;

                // Update rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = cos * mkp - sin * mkq;
                    m[k * n + q] = sin * mkp + cos * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = cos * mpk - sin * mqk;
                    m[q * n + k] = sin * mpk + cos * mqk;
                }
                // Accumulate the rotation into V (columns p and q).
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = cos * vkp - sin * vkq;
                    v[k * n + q] = sin * vkp + cos * vkq;
                }
            }
        }
    }
    panic!("Jacobi eigensolver failed to converge in {max_sweeps} sweeps");
}

fn frobenius(m: &[f64], n: usize) -> f64 {
    m.iter().take(n * n).map(|x| x * x).sum::<f64>().sqrt()
}

fn finish(m: Vec<f64>, v: Vec<f64>, n: usize) -> SymEig {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[i * n + i].partial_cmp(&m[j * n + j]).unwrap());
    let values = order.iter().map(|&k| m[k * n + k]).collect();
    let vectors = order.iter().map(|&k| (0..n).map(|r| v[r * n + k]).collect()).collect();
    SymEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn matvec(a: &[f64], n: usize, x: &[f64]) -> Vec<f64> {
        (0..n).map(|r| (0..n).map(|c| a[r * n + c] * x[c]).sum()).collect()
    }

    #[test]
    fn diagonal_matrix() {
        let a = [3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let e = sym_eig(&a, 3);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_symmetric_reconstruction() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 12;
        let mut a = vec![0.0; n * n];
        for r in 0..n {
            for c in r..n {
                let x = rng.gen_range(-1.0..1.0);
                a[r * n + c] = x;
                a[c * n + r] = x;
            }
        }
        let e = sym_eig(&a, n);
        // Each (λ, v) must satisfy A v = λ v and vectors must be orthonormal.
        for k in 0..n {
            let av = matvec(&a, n, &e.vectors[k]);
            for (avr, vkr) in av.iter().zip(&e.vectors[k]) {
                assert!((avr - e.values[k] * vkr).abs() < 1e-8, "eigenpair residual too large");
            }
        }
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = (0..n).map(|r| e.vectors[i][r] * e.vectors[j][r]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 8;
        let mut a = vec![0.0; n * n];
        for r in 0..n {
            for c in r..n {
                let x = rng.gen_range(-2.0..2.0);
                a[r * n + c] = x;
                a[c * n + r] = x;
            }
        }
        let e = sym_eig(&a, n);
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = [4.0, 1.0, 0.5, 1.0, 3.0, -1.0, 0.5, -1.0, 2.0];
        let e = sym_eig(&a, 3);
        let tr = 4.0 + 3.0 + 2.0;
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_input_panics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let _ = sym_eig(&a, 2);
    }
}
