//! Descriptive statistics and histogram helpers for the experiment harness.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance. Returns 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linearly interpolated quantile, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let w = pos - lo as f64;
        s[lo] * (1.0 - w) + s[hi] * w
    }
}

/// Median (0.5 quantile).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Minimum of a slice. Returns `f64::INFINITY` for empty input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice. Returns `f64::NEG_INFINITY` for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// A fixed-width histogram over `[lo, hi]`.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
    underflow: usize,
    overflow: usize,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram { lo, hi, counts: vec![0; bins], total: 0, underflow: 0, overflow: 0 }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of observations (including under/overflow).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Centre of bin `k`.
    pub fn bin_center(&self, k: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (k as f64 + 0.5) * w
    }

    /// Renders a one-line-per-bin ASCII bar chart (used by harness binaries).
    pub fn render(&self, width: usize) -> String {
        let maxc = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (k, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(c * width / maxc);
            out.push_str(&format!("{:8.3} | {:6} {}\n", self.bin_center(k), c, bar));
        }
        out
    }
}

/// Wilson score interval for a binomial proportion (95% by default `z=1.96`).
///
/// Returns `(low, high)`. Useful for reporting identification probabilities
/// from Monte-Carlo trials.
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.3, 0.6, 0.9, 1.0, -0.5, 2.0]);
        assert_eq!(h.counts(), &[1, 1, 1, 2]); // 1.0 lands in the top bin
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-12);
        assert!((h.bin_center(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        let (lo, hi) = wilson_interval(95, 100, 1.96);
        assert!(lo < 0.95 && 0.95 < hi);
        assert!(lo > 0.85 && hi < 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
    }
}
