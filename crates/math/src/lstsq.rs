//! Small linear solvers and least-squares fits.
//!
//! Two consumers: the MS-gate fidelity estimator (Eq. 2 of the paper) fits
//! `Π_contrast · sin(2φ)` to parity-scan data, and the ion-chain equilibrium
//! solver needs a dense linear solve inside its Newton iteration.

/// Solves the square system `A x = b` in place by Gaussian elimination with
/// partial pivoting. `a` is row-major `n × n`; on return `b` holds `x`.
///
/// Returns `false` (leaving outputs unspecified) if the matrix is singular
/// to working precision.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `n`.
pub fn solve_linear(a: &mut [f64], b: &mut [f64], n: usize) -> bool {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    assert_eq!(b.len(), n, "rhs shape mismatch");
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for r in (col + 1)..n {
            let v = a[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-300 {
            return false;
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        // Eliminate below.
        let d = a[col * n + col];
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in (col + 1)..n {
            acc -= a[col * n + c] * b[c];
        }
        b[col] = acc / a[col * n + col];
    }
    true
}

/// Least-squares amplitude for the single-parameter model `y ≈ A·f(x)`:
/// `A = Σ y·f / Σ f²`.
///
/// Returns 0 when the design is degenerate (all `f(x) = 0`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fit_amplitude(f_values: &[f64], y: &[f64]) -> f64 {
    assert_eq!(f_values.len(), y.len(), "design/response length mismatch");
    let num: f64 = f_values.iter().zip(y).map(|(f, y)| f * y).sum();
    let den: f64 = f_values.iter().map(|f| f * f).sum();
    if den < 1e-300 {
        0.0
    } else {
        num / den
    }
}

/// Fits `y ≈ A·sin(2φ)` and returns `A` — the paper's `Π_contrast`
/// estimation from a parity scan over analysis phases `φ`.
pub fn fit_sin2phi_amplitude(phi: &[f64], y: &[f64]) -> f64 {
    let design: Vec<f64> = phi.iter().map(|&p| (2.0 * p).sin()).collect();
    fit_amplitude(&design, y)
}

/// Ordinary least squares for `y ≈ X β` with a small number of columns.
/// Solves the normal equations; returns `None` when `XᵀX` is singular.
///
/// `x` is row-major with `cols` columns per observation.
///
/// # Panics
///
/// Panics if `x.len() != y.len() * cols`.
pub fn least_squares(x: &[f64], y: &[f64], cols: usize) -> Option<Vec<f64>> {
    assert_eq!(x.len(), y.len() * cols, "design shape mismatch");
    let mut xtx = vec![0.0; cols * cols];
    let mut xty = vec![0.0; cols];
    for (row, &yi) in y.iter().enumerate() {
        let r = &x[row * cols..(row + 1) * cols];
        for i in 0..cols {
            xty[i] += r[i] * yi;
            for j in 0..cols {
                xtx[i * cols + j] += r[i] * r[j];
            }
        }
    }
    if solve_linear(&mut xtx, &mut xty, cols) {
        Some(xty)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solve_simple_system() {
        // x + y = 3; x - y = 1 → x=2, y=1
        let mut a = vec![1.0, 1.0, 1.0, -1.0];
        let mut b = vec![3.0, 1.0];
        assert!(solve_linear(&mut a, &mut b, 2));
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_detected() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(!solve_linear(&mut a, &mut b, 2));
    }

    #[test]
    fn random_system_round_trip() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 6;
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut b = vec![0.0; n];
        for r in 0..n {
            b[r] = (0..n).map(|c| a[r * n + c] * x_true[c]).sum();
        }
        let mut a2 = a.clone();
        assert!(solve_linear(&mut a2, &mut b, n));
        for (xs, xt) in b.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-9);
        }
    }

    #[test]
    fn sin2phi_fit_recovers_contrast() {
        let contrast = 0.87;
        let phi: Vec<f64> = (0..32).map(|k| k as f64 * std::f64::consts::PI / 32.0).collect();
        let y: Vec<f64> = phi.iter().map(|&p| contrast * (2.0 * p).sin()).collect();
        let a = fit_sin2phi_amplitude(&phi, &y);
        assert!((a - contrast).abs() < 1e-12);
    }

    #[test]
    fn sin2phi_fit_with_noise() {
        let mut rng = SmallRng::seed_from_u64(9);
        let contrast = 0.6;
        let phi: Vec<f64> = (0..64).map(|k| k as f64 * std::f64::consts::PI / 64.0).collect();
        let y: Vec<f64> = phi
            .iter()
            .map(|&p| contrast * (2.0 * p).sin() + 0.01 * rng.gen_range(-1.0..1.0))
            .collect();
        let a = fit_sin2phi_amplitude(&phi, &y);
        assert!((a - contrast).abs() < 0.01);
    }

    #[test]
    fn ols_recovers_line() {
        // y = 2 + 3t
        let ts: Vec<f64> = (0..10).map(|k| k as f64).collect();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for &t in &ts {
            x.extend_from_slice(&[1.0, t]);
            y.push(2.0 + 3.0 * t);
        }
        let beta = least_squares(&x, &y, 2).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-10);
        assert!((beta[1] - 3.0).abs() < 1e-10);
    }
}
