//! Numerical substrate for the `itqc` workspace.
//!
//! This crate provides the self-contained numerical tools the rest of the
//! stack builds on — complex arithmetic, small dense complex linear algebra,
//! a Jacobi eigensolver for the ion-chain normal-mode problem, a radix-2 FFT
//! for noise synthesis, random-variate samplers for the paper's noise laws,
//! Gray-code enumeration used by the commuting-XX simulator, and statistics
//! helpers used by the experiment harness.
//!
//! Everything here is implemented from scratch so that the workspace depends
//! only on the approved crate set (see `DESIGN.md` §5).
//!
//! # Example
//!
//! ```
//! use itqc_math::{Complex64, Mat2};
//!
//! let h = Mat2::new([
//!     [Complex64::new(1.0, 0.0), Complex64::new(1.0, 0.0)],
//!     [Complex64::new(1.0, 0.0), Complex64::new(-1.0, 0.0)],
//! ])
//! .scale(std::f64::consts::FRAC_1_SQRT_2);
//! assert!(h.is_unitary(1e-12));
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod complex;
pub mod dense;
pub mod eig;
pub mod fft;
pub mod gray;
pub mod lstsq;
pub mod mat;
pub mod rng;
pub mod stats;

pub use complex::Complex64;
pub use dense::CMatrix;
pub use gray::{gray, gray_inverse, GrayFlips};
pub use mat::{Mat2, Mat4};

/// Numerical tolerance used across the workspace for "exact" identities
/// (unitarity checks, matrix equality up to round-off).
pub const EPS: f64 = 1e-10;
