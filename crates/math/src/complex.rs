//! Double-precision complex numbers.
//!
//! A minimal, allocation-free complex type covering everything the quantum
//! simulators need: field arithmetic, conjugation, polar form, and the
//! complex exponential. Implemented locally so the workspace does not pull in
//! `num-complex` (see `DESIGN.md` §5).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use itqc_math::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ` (the "cis" function).
    ///
    /// # Example
    ///
    /// ```
    /// use itqc_math::Complex64;
    /// let z = Complex64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15 && z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::cis(theta) * r
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 { re: self.re, im: -self.im }
    }

    /// Returns the squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::cis(self.im) * self.re.exp()
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "attempted to invert zero");
        Complex64 { re: self.re / d, im: -self.im / d }
    }

    /// Returns the principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Returns `true` when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w == z·w⁻¹ is the definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        let c = Complex64::new(0.5, 0.125);
        assert!((a + b).approx_eq(b + a, 0.0));
        assert!((a * b).approx_eq(b * a, 1e-15));
        assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-12));
        assert!((a / a).approx_eq(Complex64::ONE, 1e-15));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert!((z * z.conj()).approx_eq(Complex64::real(25.0), 1e-12));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, FRAC_PI_2);
        assert!(z.approx_eq(Complex64::new(0.0, 2.0), 1e-12));
        assert!((z.arg() - FRAC_PI_2).abs() < 1e-12);
        assert!((z.norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_identity() {
        // Euler: e^{iπ} + 1 = 0.
        let z = (Complex64::I * PI).exp();
        assert!((z + Complex64::ONE).norm() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-1.0, 0.5);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-12));
    }

    #[test]
    fn division_matches_textbook_formula() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        let q = a / b;
        // (1+2i)/(3-i) = (1+2i)(3+i)/10 = (1+7i)/10
        assert!(q.approx_eq(Complex64::new(0.1, 0.7), 1e-12));
    }

    #[test]
    fn sum_over_iterator() {
        let s: Complex64 = (0..4).map(|k| Complex64::cis(PI / 2.0 * k as f64)).sum();
        assert!(s.norm() < 1e-12, "fourth roots of unity sum to zero");
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
