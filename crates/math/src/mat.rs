//! Fixed-size 2×2 and 4×4 complex matrices.
//!
//! These are the working types for single-qubit gates (`Mat2`) and two-qubit
//! gates (`Mat4`). Both are plain stack values with no allocation, which
//! keeps the hot simulator loops free of indirection.

use crate::complex::Complex64;

/// A 2×2 complex matrix in row-major order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat2 {
    m: [[Complex64; 2]; 2],
}

impl Mat2 {
    /// Creates a matrix from rows.
    #[inline]
    pub const fn new(rows: [[Complex64; 2]; 2]) -> Self {
        Mat2 { m: rows }
    }

    /// The 2×2 identity.
    pub fn identity() -> Self {
        Mat2::new([[Complex64::ONE, Complex64::ZERO], [Complex64::ZERO, Complex64::ONE]])
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Mat2::new([[Complex64::ZERO; 2]; 2])
    }

    /// Returns entry `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.m[r][c]
    }

    /// Returns a mutable reference to entry `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Complex64 {
        &mut self.m[r][c]
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat2) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = Complex64::ZERO;
                for k in 0..2 {
                    acc += self.m[r][k] * rhs.m[k][c];
                }
                out.m[r][c] = acc;
            }
        }
        out
    }

    /// Applies the matrix to a 2-vector.
    #[inline]
    pub fn mul_vec(&self, v: [Complex64; 2]) -> [Complex64; 2] {
        [self.m[0][0] * v[0] + self.m[0][1] * v[1], self.m[1][0] * v[0] + self.m[1][1] * v[1]]
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat2 {
        let mut out = Mat2::zero();
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] = self.m[c][r].conj();
            }
        }
        out
    }

    /// Multiplies every entry by a real scalar.
    pub fn scale(&self, s: f64) -> Mat2 {
        let mut out = *self;
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] = out.m[r][c] * s;
            }
        }
        out
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale_c(&self, s: Complex64) -> Mat2 {
        let mut out = *self;
        for r in 0..2 {
            for c in 0..2 {
                out.m[r][c] *= s;
            }
        }
        out
    }

    /// Trace of the matrix.
    pub fn trace(&self) -> Complex64 {
        self.m[0][0] + self.m[1][1]
    }

    /// Returns `true` when `U U† = I` within `tol` entry-wise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.mul(&self.adjoint());
        p.approx_eq(&Mat2::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat2, tol: f64) -> bool {
        for r in 0..2 {
            for c in 0..2 {
                if !self.m[r][c].approx_eq(other.m[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Approximate equality up to a global phase `e^{iγ}`.
    ///
    /// Quantum gates that differ only by global phase are physically
    /// identical; this is the right notion of equality for transpiler tests.
    pub fn approx_eq_up_to_phase(&self, other: &Mat2, tol: f64) -> bool {
        phase_align_eq(self.m.iter().flatten().copied(), other.m.iter().flatten().copied(), tol)
    }
}

/// A 4×4 complex matrix in row-major order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4 {
    m: [[Complex64; 4]; 4],
}

impl Mat4 {
    /// Creates a matrix from rows.
    #[inline]
    pub const fn new(rows: [[Complex64; 4]; 4]) -> Self {
        Mat4 { m: rows }
    }

    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut out = Mat4::zero();
        for k in 0..4 {
            out.m[k][k] = Complex64::ONE;
        }
        out
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Mat4::new([[Complex64::ZERO; 4]; 4])
    }

    /// Returns entry `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.m[r][c]
    }

    /// Returns a mutable reference to entry `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Complex64 {
        &mut self.m[r][c]
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat4) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += self.m[r][k] * rhs.m[k][c];
                }
                out.m[r][c] = acc;
            }
        }
        out
    }

    /// Applies the matrix to a 4-vector.
    pub fn mul_vec(&self, v: [Complex64; 4]) -> [Complex64; 4] {
        let mut out = [Complex64::ZERO; 4];
        for (r, slot) in out.iter_mut().enumerate() {
            for (k, &vk) in v.iter().enumerate() {
                *slot += self.m[r][k] * vk;
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Mat4 {
        let mut out = Mat4::zero();
        for r in 0..4 {
            for c in 0..4 {
                out.m[r][c] = self.m[c][r].conj();
            }
        }
        out
    }

    /// Multiplies every entry by a real scalar.
    pub fn scale(&self, s: f64) -> Mat4 {
        let mut out = *self;
        for r in 0..4 {
            for c in 0..4 {
                out.m[r][c] = out.m[r][c] * s;
            }
        }
        out
    }

    /// Trace of the matrix.
    pub fn trace(&self) -> Complex64 {
        (0..4).map(|k| self.m[k][k]).sum()
    }

    /// Kronecker product of two 2×2 matrices: `a ⊗ b`.
    ///
    /// Index convention: the first factor acts on the more significant qubit
    /// of the pair, so `(a ⊗ b)[2r₁+r₂][2c₁+c₂] = a[r₁][c₁]·b[r₂][c₂]`.
    pub fn kron(a: &Mat2, b: &Mat2) -> Mat4 {
        let mut out = Mat4::zero();
        for r1 in 0..2 {
            for c1 in 0..2 {
                for r2 in 0..2 {
                    for c2 in 0..2 {
                        out.m[2 * r1 + r2][2 * c1 + c2] = a.at(r1, c1) * b.at(r2, c2);
                    }
                }
            }
        }
        out
    }

    /// Returns `true` when `U U† = I` within `tol` entry-wise.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.mul(&self.adjoint());
        p.approx_eq(&Mat4::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Mat4, tol: f64) -> bool {
        for r in 0..4 {
            for c in 0..4 {
                if !self.m[r][c].approx_eq(other.m[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Approximate equality up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &Mat4, tol: f64) -> bool {
        phase_align_eq(self.m.iter().flatten().copied(), other.m.iter().flatten().copied(), tol)
    }
}

/// Compares two entry streams for equality up to one global phase factor.
///
/// Finds the largest-magnitude entry of the first stream, derives the phase
/// that aligns it with the corresponding entry of the second, then checks all
/// entries under that alignment.
pub(crate) fn phase_align_eq<I, J>(a: I, b: J, tol: f64) -> bool
where
    I: Iterator<Item = Complex64>,
    J: Iterator<Item = Complex64>,
{
    let av: Vec<Complex64> = a.collect();
    let bv: Vec<Complex64> = b.collect();
    if av.len() != bv.len() {
        return false;
    }
    let Some((idx, _)) = av
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| x.norm_sqr().partial_cmp(&y.norm_sqr()).unwrap())
    else {
        return true;
    };
    if av[idx].norm() <= tol {
        // Entire first matrix is ~zero; equal iff second is too.
        return bv.iter().all(|z| z.norm() <= tol);
    }
    if bv[idx].norm() <= tol {
        return false;
    }
    let phase = bv[idx] / av[idx];
    // A pure phase must have unit modulus; tolerate small norm mismatch.
    if (phase.norm() - 1.0).abs() > tol.max(1e-9) {
        return false;
    }
    av.iter().zip(bv.iter()).all(|(&x, &y)| (x * phase).approx_eq(y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn pauli_x() -> Mat2 {
        Mat2::new([[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]])
    }

    fn hadamard() -> Mat2 {
        Mat2::new([[c(1.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(-1.0, 0.0)]]).scale(FRAC_1_SQRT_2)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let h = hadamard();
        assert!(h.mul(&Mat2::identity()).approx_eq(&h, 1e-15));
        assert!(Mat2::identity().mul(&h).approx_eq(&h, 1e-15));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = hadamard();
        assert!(h.mul(&h).approx_eq(&Mat2::identity(), 1e-12));
        assert!(h.is_unitary(1e-12));
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = hadamard();
        let b = pauli_x();
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let k = Mat4::kron(&Mat2::identity(), &Mat2::identity());
        assert!(k.approx_eq(&Mat4::identity(), 0.0));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = hadamard();
        let b = pauli_x();
        let lhs = Mat4::kron(&a, &b).mul(&Mat4::kron(&b, &a));
        let rhs = Mat4::kron(&a.mul(&b), &b.mul(&a));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn mat4_unitarity_of_kron() {
        let k = Mat4::kron(&hadamard(), &pauli_x());
        assert!(k.is_unitary(1e-12));
    }

    #[test]
    fn global_phase_equality() {
        let h = hadamard();
        let phased = h.scale_c(Complex64::cis(0.7));
        assert!(h.approx_eq_up_to_phase(&phased, 1e-12));
        assert!(!h.approx_eq(&phased, 1e-12));
        assert!(!h.approx_eq_up_to_phase(&pauli_x(), 1e-9));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let h = hadamard();
        let v = [c(0.6, 0.0), c(0.0, 0.8)];
        let w = h.mul_vec(v);
        let norm: f64 = w.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12, "unitary preserves norm");
    }

    #[test]
    fn trace_linear() {
        let a = hadamard();
        assert!((a.trace().re - 0.0).abs() < 1e-12);
        assert!((Mat4::identity().trace().re - 4.0).abs() < 1e-15);
    }
}
