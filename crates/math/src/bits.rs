//! Bit-manipulation helpers for qubit-index combinatorics.
//!
//! The paper's test classes (§V-A) are defined by bit predicates on qubit
//! labels `0..2^n`; these helpers centralise the bit algebra so the protocol
//! code in `itqc-core` reads like the paper.

/// Returns bit `i` of `x` as a `bool`.
#[inline]
pub fn bit(x: usize, i: u32) -> bool {
    (x >> i) & 1 == 1
}

/// Returns bit `i` of `x` as `0` or `1`.
#[inline]
pub fn bit01(x: usize, i: u32) -> u8 {
    ((x >> i) & 1) as u8
}

/// Complements the low `n` bits of `x` (the paper's bit-complementary
/// partner of a qubit label).
///
/// # Example
///
/// ```
/// use itqc_math::bits::complement;
/// assert_eq!(complement(0b010, 3), 0b101);
/// ```
#[inline]
pub fn complement(x: usize, n: u32) -> usize {
    x ^ mask(n)
}

/// A mask of the low `n` bits.
#[inline]
pub fn mask(n: u32) -> usize {
    if n as usize >= usize::BITS as usize {
        usize::MAX
    } else {
        (1usize << n) - 1
    }
}

/// Returns `true` when `a` and `b` are bit-complementary over `n` bits.
#[inline]
pub fn is_complementary(a: usize, b: usize, n: u32) -> bool {
    a ^ b == mask(n)
}

/// The bit positions (ascending) where `a` and `b` agree, over `n` bits.
///
/// For a faulty coupling `{a,b}` these are exactly the first-round tests it
/// trips (its *syndrome* support — §V-B).
pub fn shared_bit_positions(a: usize, b: usize, n: u32) -> Vec<u32> {
    let same = !(a ^ b) & mask(n);
    (0..n).filter(|&i| bit(same, i)).collect()
}

/// The bit positions (ascending) where `a` and `b` differ, over `n` bits.
pub fn differing_bit_positions(a: usize, b: usize, n: u32) -> Vec<u32> {
    let diff = (a ^ b) & mask(n);
    (0..n).filter(|&i| bit(diff, i)).collect()
}

/// Number of bits needed to label `count` items: `ceil(log2(count))`,
/// with a minimum of 1.
///
/// This is the paper's padding rule: an `N`-qubit machine is analysed with
/// `n = ceil(log2 N)` index bits and labels `N..2^n` simply never occur.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn label_bits(count: usize) -> u32 {
    assert!(count > 0, "cannot label zero items");
    let n = usize::BITS - (count - 1).leading_zeros();
    n.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accessors() {
        assert!(bit(0b100, 2));
        assert!(!bit(0b100, 1));
        assert_eq!(bit01(0b110, 1), 1);
        assert_eq!(bit01(0b110, 0), 0);
    }

    #[test]
    fn complement_involution() {
        for x in 0..32usize {
            assert_eq!(complement(complement(x, 5), 5), x);
        }
    }

    #[test]
    fn complementary_detection() {
        assert!(is_complementary(0b011, 0b100, 3));
        assert!(!is_complementary(0b011, 0b101, 3));
        // Paper Example V.4: {0,7}, {1,6}, {2,5}, {3,4} are complementary in 3 bits.
        for (a, b) in [(0, 7), (1, 6), (2, 5), (3, 4)] {
            assert!(is_complementary(a, b, 3));
        }
    }

    #[test]
    fn shared_positions_match_paper_example() {
        // Paper Example V.4: {2,7} = {010, 111} share bit i=1.
        assert_eq!(shared_bit_positions(2, 7, 3), vec![1]);
        // Complementary pair shares nothing.
        assert!(shared_bit_positions(3, 4, 3).is_empty());
    }

    #[test]
    fn shared_and_differing_partition() {
        for a in 0..16usize {
            for b in 0..16usize {
                let s = shared_bit_positions(a, b, 4);
                let d = differing_bit_positions(a, b, 4);
                assert_eq!(s.len() + d.len(), 4);
            }
        }
    }

    #[test]
    fn label_bits_values() {
        assert_eq!(label_bits(1), 1);
        assert_eq!(label_bits(2), 1);
        assert_eq!(label_bits(3), 2);
        assert_eq!(label_bits(8), 3);
        assert_eq!(label_bits(9), 4);
        assert_eq!(label_bits(11), 4);
        assert_eq!(label_bits(32), 5);
    }
}
