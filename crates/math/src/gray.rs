//! Binary reflected Gray codes.
//!
//! Two consumers: the paper's §V-A observation that the complementary-pair
//! classes satisfy `[i,=] = (GrayCode(i), 0)` (footnote 7), and the
//! commuting-XX simulator, which walks all `2^m` spin configurations in
//! Gray-code order so that consecutive configurations differ in exactly one
//! spin (enabling O(m) incremental phase updates).

/// Returns the `k`-th binary reflected Gray code: `k ^ (k >> 1)`.
///
/// # Example
///
/// ```
/// use itqc_math::gray;
/// assert_eq!((0..8).map(gray).collect::<Vec<_>>(), [0, 1, 3, 2, 6, 7, 5, 4]);
/// ```
#[inline]
pub fn gray(k: usize) -> usize {
    k ^ (k >> 1)
}

/// Inverse of [`gray`]: recovers `k` from `gray(k)`.
pub fn gray_inverse(mut g: usize) -> usize {
    let mut k = g;
    while g != 0 {
        g >>= 1;
        k ^= g;
    }
    k
}

/// Iterator over the sequence of bit positions that flip when walking the
/// Gray code from index 0 through `2^m − 1`.
///
/// Yields `2^m − 1` flips; the flip between `gray(k-1)` and `gray(k)` is at
/// bit `trailing_zeros(k)`.
///
/// # Example
///
/// ```
/// use itqc_math::GrayFlips;
/// let flips: Vec<u32> = GrayFlips::new(3).collect();
/// assert_eq!(flips, [0, 1, 0, 2, 0, 1, 0]);
/// ```
#[derive(Clone, Debug)]
pub struct GrayFlips {
    next: usize,
    end: usize,
}

impl GrayFlips {
    /// Walks the full `m`-bit Gray code.
    ///
    /// # Panics
    ///
    /// Panics if `m` is large enough that `2^m` overflows `usize`.
    pub fn new(m: u32) -> Self {
        assert!(m < usize::BITS, "Gray walk of 2^{m} states overflows usize");
        GrayFlips { next: 1, end: 1usize << m }
    }
}

impl Iterator for GrayFlips {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.next >= self.end {
            return None;
        }
        let bit = self.next.trailing_zeros();
        self.next += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for GrayFlips {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_codes_differ_in_one_bit() {
        for k in 1..1024usize {
            let diff = gray(k) ^ gray(k - 1);
            assert_eq!(diff.count_ones(), 1, "k={k}");
        }
    }

    #[test]
    fn gray_inverse_round_trip() {
        for k in 0..4096usize {
            assert_eq!(gray_inverse(gray(k)), k);
        }
    }

    #[test]
    fn flips_reproduce_gray_sequence() {
        let m = 10u32;
        let mut state = 0usize;
        let mut visited = vec![false; 1 << m];
        visited[0] = true;
        for bit in GrayFlips::new(m) {
            state ^= 1 << bit;
            assert!(!visited[state], "state revisited");
            visited[state] = true;
        }
        assert!(visited.iter().all(|&v| v), "walk must cover all states");
    }

    #[test]
    fn flips_match_gray_differences() {
        let m = 8u32;
        for (k, bit) in GrayFlips::new(m).enumerate() {
            let expect = (gray(k + 1) ^ gray(k)).trailing_zeros();
            assert_eq!(bit, expect);
        }
    }

    #[test]
    fn exact_size() {
        let it = GrayFlips::new(6);
        assert_eq!(it.len(), 63);
    }
}
