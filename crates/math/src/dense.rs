//! Heap-allocated dense complex matrices.
//!
//! Used for computing full unitaries of small circuits (transpiler
//! verification, fault-model algebra) where the dimension is `2^n` for small
//! `n`. Not used in simulator hot paths.

use crate::complex::Complex64;
use crate::mat::{phase_align_eq, Mat2, Mat4};

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use itqc_math::CMatrix;
/// let id = CMatrix::identity(4);
/// assert!(id.is_unitary(1e-12));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix { rows, cols, data: vec![Complex64::ZERO; rows * cols] }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for k in 0..n {
            *m.at_mut(k, k) = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major entry vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        CMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.cols + c]
    }

    /// Returns a mutable reference to entry `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }

    /// Raw row-major entries.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(r, k);
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    *out.at_mut(r, c) += a * rhs.at(k, c);
                }
            }
        }
        out
    }

    /// Applies the matrix to a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in matrix-vector product");
        let mut out = vec![Complex64::ZERO; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (c, &x) in v.iter().enumerate() {
                acc += self.at(r, c) * x;
            }
            *o = acc;
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c).conj();
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self.at(r1, c1);
                if a == Complex64::ZERO {
                    continue;
                }
                for r2 in 0..rhs.rows {
                    for c2 in 0..rhs.cols {
                        *out.at_mut(r1 * rhs.rows + r2, c1 * rhs.cols + c2) = a * rhs.at(r2, c2);
                    }
                }
            }
        }
        out
    }

    /// Returns `true` when the matrix is square and `U U† = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let p = self.mul(&self.adjoint());
        p.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.iter().zip(other.data.iter()).all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Approximate equality up to a global phase factor.
    pub fn approx_eq_up_to_phase(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && phase_align_eq(self.data.iter().copied(), other.data.iter().copied(), tol)
    }

    /// Embeds a single-qubit gate acting on `target` into an `n`-qubit
    /// unitary (qubit 0 is the least-significant index bit).
    pub fn embed_1q(n: usize, target: usize, g: &Mat2) -> CMatrix {
        assert!(target < n, "target qubit out of range");
        let dim = 1usize << n;
        let mut out = CMatrix::zeros(dim, dim);
        let tbit = 1usize << target;
        for col in 0..dim {
            let cb = usize::from(col & tbit != 0);
            for rb in 0..2 {
                let row = (col & !tbit) | (rb << target);
                *out.at_mut(row, col) += g.at(rb, cb);
            }
        }
        out
    }

    /// Embeds a two-qubit gate on `(q1, q0)` into an `n`-qubit unitary.
    ///
    /// The `Mat4` index convention matches [`Mat4::kron`]: the row/column
    /// index is `2·b1 + b0` where `b1` is the bit of `q1` and `b0` of `q0`.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn embed_2q(n: usize, q1: usize, q0: usize, g: &Mat4) -> CMatrix {
        assert!(q1 < n && q0 < n && q1 != q0, "bad two-qubit target");
        let dim = 1usize << n;
        let mut out = CMatrix::zeros(dim, dim);
        let b1 = 1usize << q1;
        let b0 = 1usize << q0;
        for col in 0..dim {
            let c1 = usize::from(col & b1 != 0);
            let c0 = usize::from(col & b0 != 0);
            let cin = 2 * c1 + c0;
            let base = col & !(b1 | b0);
            for rin in 0..4 {
                let r1 = rin >> 1;
                let r0 = rin & 1;
                let row = base | (r1 << q1) | (r0 << q0);
                *out.at_mut(row, col) += g.at(rin, cin);
            }
        }
        out
    }
}

impl From<&Mat2> for CMatrix {
    fn from(m: &Mat2) -> Self {
        let mut out = CMatrix::zeros(2, 2);
        for r in 0..2 {
            for c in 0..2 {
                *out.at_mut(r, c) = m.at(r, c);
            }
        }
        out
    }
}

impl From<&Mat4> for CMatrix {
    fn from(m: &Mat4) -> Self {
        let mut out = CMatrix::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                *out.at_mut(r, c) = m.at(r, c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn hadamard() -> Mat2 {
        Mat2::new([[c(1.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(-1.0, 0.0)]]).scale(FRAC_1_SQRT_2)
    }

    fn pauli_x() -> Mat2 {
        Mat2::new([[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]])
    }

    #[test]
    fn identity_multiplication() {
        let h: CMatrix = (&hadamard()).into();
        assert!(h.mul(&CMatrix::identity(2)).approx_eq(&h, 0.0));
    }

    #[test]
    fn kron_shape_and_values() {
        let a: CMatrix = (&hadamard()).into();
        let b: CMatrix = (&pauli_x()).into();
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        let expected: CMatrix = (&Mat4::kron(&hadamard(), &pauli_x())).into();
        assert!(k.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn embed_1q_matches_kron() {
        // On 2 qubits, gate on qubit 1 (high bit) is G ⊗ I.
        let g = hadamard();
        let e = CMatrix::embed_1q(2, 1, &g);
        let k: CMatrix = (&Mat4::kron(&g, &Mat2::identity())).into();
        assert!(e.approx_eq(&k, 1e-12));
        // Gate on qubit 0 (low bit) is I ⊗ G.
        let e0 = CMatrix::embed_1q(2, 0, &g);
        let k0: CMatrix = (&Mat4::kron(&Mat2::identity(), &g)).into();
        assert!(e0.approx_eq(&k0, 1e-12));
    }

    #[test]
    fn embed_2q_on_adjacent_qubits() {
        let g = Mat4::kron(&pauli_x(), &hadamard());
        let e = CMatrix::embed_2q(2, 1, 0, &g);
        let d: CMatrix = (&g).into();
        assert!(e.approx_eq(&d, 1e-12));
    }

    #[test]
    fn embed_2q_swapped_operands() {
        // Embedding G on (q1=0, q0=1) must equal embedding SWAP·G·SWAP on (1,0).
        let g = Mat4::kron(&pauli_x(), &hadamard());
        let e = CMatrix::embed_2q(2, 0, 1, &g);
        // SWAP conjugation == kron factors exchanged for product gates.
        let gs = Mat4::kron(&hadamard(), &pauli_x());
        let expect: CMatrix = (&gs).into();
        assert!(e.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn unitarity_of_embeddings() {
        let e = CMatrix::embed_1q(3, 1, &hadamard());
        assert!(e.is_unitary(1e-12));
        let g = Mat4::kron(&hadamard(), &hadamard());
        let e2 = CMatrix::embed_2q(3, 2, 0, &g);
        assert!(e2.is_unitary(1e-12));
    }

    #[test]
    fn phase_equality() {
        let a = CMatrix::identity(3);
        let mut b = a.clone();
        for k in 0..3 {
            *b.at_mut(k, k) = Complex64::cis(1.1);
        }
        assert!(a.approx_eq_up_to_phase(&b, 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_product_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
