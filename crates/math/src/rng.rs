//! Random-variate samplers for the paper's noise laws.
//!
//! Implemented locally (Box–Muller and inverse-CDF mixtures) so the
//! workspace does not depend on `rand_distr` (see `DESIGN.md` §5).

use rand::Rng;
use std::f64::consts::PI;

/// A distribution over `f64` that can be sampled with any [`Rng`].
pub trait Distribution {
    /// Draws one variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `count` variates into a vector.
    fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// Standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u = 0 exactly; `gen` yields [0, 1).
    let u: f64 = 1.0 - rng.gen::<f64>();
    let v: f64 = rng.gen();
    (-2.0 * u.ln()).sqrt() * (2.0 * PI * v).cos()
}

/// The normal distribution `N(mean, std²)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std < 0` or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && mean.is_finite() && std.is_finite(), "bad normal parameters");
        Normal { mean, std }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Distribution for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }
}

/// Half-normal distribution `|N(0, σ²)|`.
///
/// Its mean is `σ·√(2/π)`. The paper's "10% average amplitude error" is
/// modelled as a zero-mean normal whose absolute value averages 0.10, i.e.
/// `σ = 0.10·√(π/2)` — construct that with [`HalfNormal::with_mean`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HalfNormal {
    sigma: f64,
}

impl HalfNormal {
    /// Creates a half-normal with scale parameter `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "bad half-normal sigma");
        HalfNormal { sigma }
    }

    /// Creates a half-normal whose *mean* is `mean`, i.e. `σ = mean·√(π/2)`.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(mean * (PI / 2.0).sqrt())
    }

    /// The scale parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for HalfNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.sigma * standard_normal(rng)).abs()
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or bounds are non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad uniform bounds");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        rng.gen_range(self.lo..self.hi)
    }
}

/// The paper's composite under-rotation law (§VII, Fig. 9):
/// density is flat at height `a` on `[0, c]` (c = 6% calibration threshold)
/// and falls off as a right-tail Gaussian `a·exp(−(u−c)²/(2σ²))` beyond,
/// with `a(σ) = 1/(c + σ·√(π/2))` normalising the total mass to one.
///
/// # Example
///
/// ```
/// use itqc_math::rng::{CompositeUnderRotation, Distribution};
/// use rand::SeedableRng;
/// let law = CompositeUnderRotation::paper(0.05);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let u = law.sample(&mut rng);
/// assert!(u >= 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompositeUnderRotation {
    cutoff: f64,
    sigma: f64,
}

impl CompositeUnderRotation {
    /// Paper default: cutoff `c = 0.06` with Gaussian tail spread `sigma`.
    pub fn paper(sigma: f64) -> Self {
        Self::new(0.06, sigma)
    }

    /// Creates the composite law with explicit cutoff.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is negative or non-finite.
    pub fn new(cutoff: f64, sigma: f64) -> Self {
        assert!(
            cutoff >= 0.0 && sigma >= 0.0 && cutoff.is_finite() && sigma.is_finite(),
            "bad composite-law parameters"
        );
        CompositeUnderRotation { cutoff, sigma }
    }

    /// The normalisation constant `a(σ) = 1/(c + σ√(π/2))` (paper footnote 10).
    pub fn peak_density(&self) -> f64 {
        1.0 / (self.cutoff + self.sigma * (PI / 2.0).sqrt())
    }

    /// Probability mass of the uniform body `[0, c]`.
    pub fn body_mass(&self) -> f64 {
        self.peak_density() * self.cutoff
    }

    /// The Gaussian tail spread σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The calibration cutoff `c`.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }
}

impl Distribution for CompositeUnderRotation {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let p_body = self.body_mass();
        if rng.gen::<f64>() < p_body {
            // Uniform body.
            if self.cutoff == 0.0 {
                0.0
            } else {
                rng.gen_range(0.0..self.cutoff)
            }
        } else {
            // Right half-Gaussian tail anchored at the cutoff.
            self.cutoff + (self.sigma * standard_normal(rng)).abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const N: usize = 200_000;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(42);
        let d = Normal::new(1.5, 0.5);
        let xs = d.sample_vec(&mut rng, N);
        let m = stats::mean(&xs);
        let s = stats::std_dev(&xs);
        assert!((m - 1.5).abs() < 0.01, "mean {m}");
        assert!((s - 0.5).abs() < 0.01, "std {s}");
    }

    #[test]
    fn half_normal_mean_matches_construction() {
        let mut rng = SmallRng::seed_from_u64(43);
        let d = HalfNormal::with_mean(0.10);
        let xs = d.sample_vec(&mut rng, N);
        let m = stats::mean(&xs);
        assert!((m - 0.10).abs() < 0.002, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = SmallRng::seed_from_u64(44);
        let d = Uniform::new(-1.0, 3.0);
        let xs = d.sample_vec(&mut rng, N);
        assert!(xs.iter().all(|&x| (-1.0..3.0).contains(&x)));
        assert!((stats::mean(&xs) - 1.0).abs() < 0.02);
    }

    #[test]
    fn composite_normalisation_constant() {
        // a(σ) = 1/(0.06 + σ√(π/2)) — footnote 10.
        let law = CompositeUnderRotation::paper(0.15);
        let expect = 1.0 / (0.06 + 0.15 * (PI / 2.0).sqrt());
        assert!((law.peak_density() - expect).abs() < 1e-15);
    }

    #[test]
    fn composite_body_fraction_matches_analytic() {
        let mut rng = SmallRng::seed_from_u64(45);
        let law = CompositeUnderRotation::paper(0.05);
        let xs = law.sample_vec(&mut rng, N);
        let below = xs.iter().filter(|&&x| x <= 0.06).count() as f64 / N as f64;
        assert!((below - law.body_mass()).abs() < 0.01, "body mass {below}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn composite_zero_sigma_degenerates_to_uniform() {
        let mut rng = SmallRng::seed_from_u64(46);
        let law = CompositeUnderRotation::paper(0.0);
        let xs = law.sample_vec(&mut rng, 10_000);
        assert!(xs.iter().all(|&x| (0.0..=0.06).contains(&x)));
    }

    #[test]
    fn composite_wider_sigma_has_heavier_tail() {
        let mut rng = SmallRng::seed_from_u64(47);
        let narrow = CompositeUnderRotation::paper(0.05).sample_vec(&mut rng, N);
        let wide = CompositeUnderRotation::paper(0.15).sample_vec(&mut rng, N);
        let tail = |xs: &[f64]| xs.iter().filter(|&&x| x > 0.15).count() as f64 / N as f64;
        assert!(tail(&wide) > tail(&narrow) + 0.02);
    }
}
