//! Radix-2 fast Fourier transform.
//!
//! Used by the 1/f phase-noise spectral synthesiser in `itqc-faults`.
//! Iterative Cooley–Tukey with bit-reversal permutation; power-of-two sizes
//! only, which is all the noise generator needs.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// In-place forward FFT: `X[k] = Σ_j x[j]·e^{-2πi jk/N}`.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft(data: &mut [Complex64]) {
    transform(data, -1.0);
}

/// In-place inverse FFT (normalised by `1/N`), so `ifft(fft(x)) == x`.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex64]) {
    transform(data, 1.0);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z / n;
    }
}

fn transform(data: &mut [Complex64], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Convenience: forward FFT of a real signal, returning complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex64> {
    let mut buf: Vec<Complex64> = signal.iter().map(|&x| Complex64::real(x)).collect();
    fft(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for z in &x {
            assert!(z.approx_eq(Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 64;
        let f = 5;
        let mut x: Vec<Complex64> =
            (0..n).map(|j| Complex64::cis(2.0 * PI * f as f64 * j as f64 / n as f64)).collect();
        fft(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == f {
                assert!((z.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.norm() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn round_trip_random() {
        let mut rng = SmallRng::seed_from_u64(11);
        let orig: Vec<Complex64> = (0..256)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let x: Vec<Complex64> =
            (0..128).map(|_| Complex64::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = x.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Complex64::ZERO; 12];
        fft(&mut x);
    }
}
